// Package monitor simulates the testbed's experiment monitoring stack
// (slide 9): system-level probes plus infrastructure-level probes (power,
// network) captured at ≈1 Hz, exposed through a query API with long-term
// storage semantics.
//
// The crucial fidelity point is *attribution*: power meters and switch
// counters measure a PORT, and a wiring database maps ports to nodes. When
// a cabling fault swaps two nodes' cables, each node's consumption is
// attributed to the other node — the paper's "cabling issue → wrong
// measurements by testbed monitoring service". The kwapi test family
// detects exactly this by loading a node and watching its own power series.
//
// Implementation note: rather than firing 894 events per simulated second
// for weeks (billions of events), the collector records each node's load
// *changes* and materialises 1 Hz samples lazily at query time. Noise is a
// deterministic hash of (port, second), so queries are reproducible and the
// simulation stays O(load changes).
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Metric names understood by Query.
const (
	MetricPowerW  = "power_w"
	MetricCPULoad = "cpu_load"
	MetricNetMbps = "net_mbps"
)

// Sample is one measurement.
type Sample struct {
	T simclock.Time `json:"t"`
	V float64       `json:"v"`
}

// SamplePeriod is the probe frequency (slide 9: "captured at high frequency
// (≈1 Hz)").
const SamplePeriod = simclock.Second

type loadChange struct {
	at      simclock.Time
	cpu     float64 // 0..1
	netMbps float64
}

// Collector is the monitoring service. Experiment scripts on CI executor
// goroutines record load changes and query series; the simulation's run
// token serializes them against the event loop, and the collector's own
// measurement store additionally sits behind a read-write mutex (wiring
// is immutable after construction but shares the lock for simplicity).
// Note that the power/net attribution path also reads live testbed NIC
// state owned by the run token, so queries must come from simulation
// context — not from arbitrary outside goroutines while the clock runs.
type Collector struct {
	clock  *simclock.Clock
	tb     *testbed.Testbed
	faults *faults.Injector

	mu sync.RWMutex

	// wiring is the monitoring database: switch port → node name, recorded
	// at install time. Cabling faults change live NIC ports, NOT this map —
	// that divergence is the bug. portOf is the inverse (node name → its
	// recorded port); both are immutable after construction.
	wiring map[string]string
	portOf map[string]string

	// nodes caches the testbed's node list: attribution scans it on cable
	// mismatches, and rebuilding the slice per query dominated campaign
	// allocations before it was hoisted here.
	nodes []*testbed.Node

	// history of load changes per node (actual physical activity).
	history map[string][]loadChange
}

// NewCollector wires up the monitoring service from the testbed's current
// (healthy) cabling.
func NewCollector(clock *simclock.Clock, tb *testbed.Testbed, inj *faults.Injector) *Collector {
	c := &Collector{
		clock:   clock,
		tb:      tb,
		faults:  inj,
		wiring:  map[string]string{},
		portOf:  map[string]string{},
		nodes:   tb.Nodes(),
		history: map[string][]loadChange{},
	}
	for _, n := range c.nodes {
		c.wiring[n.Inv.NICs[0].SwitchPort] = n.Name
		c.portOf[n.Name] = n.Inv.NICs[0].SwitchPort
	}
	return c
}

// SetLoad records that a node's activity changed now (experiments do this
// when they start/stop work on a node). cpu is in [0,1].
func (c *Collector) SetLoad(node string, cpu, netMbps float64) error {
	if c.tb.Node(node) == nil {
		return fmt.Errorf("monitor: unknown node %q", node)
	}
	if cpu < 0 {
		cpu = 0
	}
	if cpu > 1 {
		cpu = 1
	}
	at := c.clock.Now()
	c.mu.Lock()
	c.history[node] = append(c.history[node], loadChange{at: at, cpu: cpu, netMbps: netMbps})
	c.mu.Unlock()
	return nil
}

// loadAt returns the physical load of a node at time t. The caller holds
// the collector mutex (read side suffices).
func (c *Collector) loadAt(node string, t simclock.Time) loadChange {
	hist := c.history[node]
	// Binary search for the last change ≤ t.
	i := sort.Search(len(hist), func(i int) bool { return hist[i].at > t }) - 1
	if i < 0 {
		return loadChange{}
	}
	return hist[i]
}

// attributedNode resolves which node's physical activity lands in the
// series named after `target`: monitoring believes wiring[port]=target, so
// it reads the port, and the node *actually* plugged into that port is
// whoever's live NIC carries it. The caller holds the collector mutex.
func (c *Collector) attributedNode(target string) string {
	n := c.tb.Node(target)
	if n == nil {
		return ""
	}
	// The port that the wiring DB says belongs to target.
	port := c.portOf[target]
	if port == "" {
		return ""
	}
	// Fast path: on a healthy cabling the target itself still carries its
	// recorded port — no scan needed.
	if n.Inv.NICs[0].SwitchPort == port {
		return target
	}
	// A cable moved: find who is physically plugged into the port now.
	for _, other := range c.nodes {
		if other.Inv.NICs[0].SwitchPort == port {
			return other.Name
		}
	}
	return ""
}

// Attribution returns the name of the node whose physical activity actually
// feeds the series published under target's name. On a healthy testbed this
// is target itself; under a cabling swap it is the peer node. The kwapi test
// family compares Attribution(n) with n to detect miswiring.
func (c *Collector) Attribution(target string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.attributedNode(target)
}

// idlePowerW estimates a node's idle draw from its hardware (bigger, older
// boxes burn more).
func idlePowerW(n *testbed.Node) float64 {
	return 70 + 6*float64(n.Cores()) + 0.2*float64(n.Inv.RAMGB)
}

// peakExtraW is the additional draw at full load.
func peakExtraW(n *testbed.Node) float64 {
	return 9 * float64(n.Cores())
}

// noiseSeed is the FNV-1a prefix of the noise hash: it depends only on the
// target name, so Query hoists it out of the per-sample loop instead of
// re-hashing the string once per 1 Hz sample.
func noiseSeed(target string) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(target) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// noiseAt finishes the hash for one second, yielding a deterministic ±1 W
// wiggle that keeps query results reproducible without consuming RNG state.
func noiseAt(seed uint64, sec int64) float64 {
	h := seed ^ uint64(sec)
	h *= 1099511628211
	return float64(h%2000)/1000 - 1
}

// noise derives the wiggle from (target, second) in one call.
func noise(target string, sec int64) float64 {
	return noiseAt(noiseSeed(target), sec)
}

// Query returns the 1 Hz samples of a metric for a node over [from, to].
// It fails when the node's site has a flaky kwapi service (each query rolls
// the service's error rate once, like one REST call).
func (c *Collector) Query(metric, node string, from, to simclock.Time) ([]Sample, error) {
	n := c.tb.Node(node)
	if n == nil {
		return nil, fmt.Errorf("monitor: unknown node %q", node)
	}
	if c.faults != nil && c.faults.ServiceFails(n.Site, "kwapi") {
		return nil, fmt.Errorf("monitor: kwapi service error at %s", n.Site)
	}
	if to < from {
		return nil, fmt.Errorf("monitor: inverted time range")
	}
	if now := c.clock.Now(); to > now {
		to = now
	}

	c.mu.RLock()
	defer c.mu.RUnlock()

	// Infrastructure metrics (power, net) go through the wiring database;
	// system metrics (cpu) come from an agent on the node itself and are
	// immune to cabling mistakes.
	source := node
	if metric == MetricPowerW || metric == MetricNetMbps {
		source = c.attributedNode(node)
		if source == "" {
			return nil, fmt.Errorf("monitor: no probe wired for %q", node)
		}
	}
	srcNode := c.tb.Node(source)

	start := from / SamplePeriod
	end := to / SamplePeriod
	if end < start { // range entirely in the future (to was clamped to now)
		return nil, nil
	}
	out := make([]Sample, 0, int(end-start)+1)
	seed := noiseSeed(node)
	idle, peak := 0.0, 0.0
	if metric == MetricPowerW {
		idle, peak = idlePowerW(srcNode), peakExtraW(srcNode)
	}
	for s := start; s <= end; s++ {
		t := s * SamplePeriod
		load := c.loadAt(source, t)
		var v float64
		switch metric {
		case MetricPowerW:
			v = idle + load.cpu*peak + noiseAt(seed, int64(s))
		case MetricCPULoad:
			v = load.cpu
		case MetricNetMbps:
			v = load.netMbps
		default:
			return nil, fmt.Errorf("monitor: unknown metric %q", metric)
		}
		out = append(out, Sample{T: t, V: v})
	}
	return out, nil
}

// Mean averages a sample slice (0 for empty input).
func Mean(ss []Sample) float64 {
	if len(ss) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range ss {
		sum += s.V
	}
	return sum / float64(len(ss))
}

// CheckRate verifies that samples are spaced exactly one SamplePeriod apart
// over the queried window — the probe-liveness check of the kwapi test
// family.
func CheckRate(ss []Sample) error {
	if len(ss) < 2 {
		return fmt.Errorf("monitor: too few samples (%d)", len(ss))
	}
	for i := 1; i < len(ss); i++ {
		if ss[i].T-ss[i-1].T != SamplePeriod {
			return fmt.Errorf("monitor: gap of %v between samples %d and %d",
				ss[i].T-ss[i-1].T, i-1, i)
		}
	}
	return nil
}
