// Package federation coordinates a campaign split into per-site shards —
// the architecture the paper's subject actually has. Grid'5000 is not one
// scheduler: it is a federation of sites, each running its own OAR, its
// own monitoring and its own operations team, stitched together behind
// common APIs. The monolithic core.Framework collapses that into a single
// world; a Federation instead builds one complete Framework per site (its
// own OAR shard, monitor shard, fault and operator processes, CI server,
// bug tracker and simulated clock) and owns the barriers that keep the
// shards' clocks in lockstep.
//
// Determinism is the load-bearing property. Every shard draws from an
// independent RNG stream whose seed is a pure function of (campaign seed,
// site name) — see ShardSeed — and shards share no mutable state
// whatsoever, so stepping them serially or across GOMAXPROCS goroutines
// produces bit-identical campaign summaries. That is the same
// serial ≡ parallel discipline core.Fleet proved for multi-seed sweeps,
// now applied *inside* one campaign: Advance splits simulated time into
// barrier ticks (a week by default), steps every shard through the tick
// on a worker pool, waits on the barrier, and repeats. The determinism
// test and BenchmarkE17_FederatedAdvance gate exactly this.
//
// Reporting merges shard outcomes the way the real federation's status
// pages do: weekly verdict counters sum across sites week by week, bug
// and build counters sum, and the trend endpoints are re-selected from
// the merged report with the same volume threshold a monolithic campaign
// uses (core.TrendWeeks).
package federation

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Config parameterises a federated campaign.
type Config struct {
	// Seed is the campaign seed; each shard derives its own stream from it
	// via ShardSeed.
	Seed int64

	// Spec is the cluster specification to federate (nil =
	// testbed.DefaultSpec). Shards are carved per distinct Site, in first-
	// appearance order.
	Spec []testbed.ClusterSpec

	// Workers bounds how many shards advance concurrently inside one
	// barrier tick. 0 means GOMAXPROCS; 1 steps shards serially. The
	// campaign outcome is identical either way.
	Workers int

	// Barrier is the tick length between cross-site clock barriers
	// (0 = one simulated week). Shards never drift further apart than one
	// barrier while an Advance is in flight, and always finish it in
	// lockstep.
	Barrier simclock.Time

	// Configure builds a shard's campaign profile (nil =
	// core.DefaultConfig). The returned Config's Seed and Spec are
	// overridden with the shard's derived seed and site clusters.
	Configure func(site string, seed int64) core.Config
}

// Shard is one site's slice of the federated campaign: a complete
// framework over just that site's clusters.
type Shard struct {
	Site string
	Seed int64
	F    *core.Framework
}

// Federation owns the per-site shards and their lockstep clocks.
type Federation struct {
	cfg     Config
	shards  []*Shard
	bySite  map[string]*Shard
	indexOf map[string]int
	workers int
	barrier simclock.Time
	started bool

	// mu guards the federated clock and all chaos state below. Shard
	// frameworks are never touched under mu: Advance plans a tick under the
	// lock and executes it outside, so injecting or healing a grid event
	// from another goroutine (the gateway's /chaos endpoints) never blocks
	// behind a stepping shard.
	mu  sync.Mutex
	now simclock.Time

	// behind[i] is how far shard i's clock lags the federated clock: a
	// downed shard accrues debt each tick it sits frozen at the barrier,
	// and repays it with catch-up ticks on heal. Negative values mean the
	// shard ran ahead (Gateway.AdvanceSite).
	behind []simclock.Time

	// grid owns the active site-scale events; pending/pendingHeals hold
	// the not-yet-due schedule. announced/healAnnounced track which events
	// already had their bug tickets filed/closed in the shard trackers.
	grid          *faults.GridInjector
	pending       []faults.ScheduleEntry
	pendingHeals  []pendingHeal
	announced     map[int]bool
	healAnnounced map[int]bool

	// stepGate, when set, wraps every shard step so an embedder (the
	// gateway) can interleave its own locking with the barrier ticks.
	stepGate func(site string, step func())

	// gridListener, when set, is invoked (outside fed.mu) after any call
	// that can change grid availability or the federated clock: InjectGrid,
	// HealGrid and Advance. The gateway hangs its admission-queue pump off
	// this hook so a site outage invalidates queued reservations immediately
	// instead of waiting for the next submit.
	gridListener func()
}

// pendingHeal schedules the heal of an injected event.
type pendingHeal struct {
	id int
	at simclock.Time
}

// ShardSeed derives a shard's RNG seed from the campaign seed and its site
// name (FNV-1a over the name, mixed into the base). The function is pure,
// so a shard's entire campaign depends only on (seed, site, profile) — not
// on shard order, worker count or scheduling.
func ShardSeed(base int64, site string) int64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(site) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return base ^ int64(h&0x7fffffffffffffff)
}

// New carves the spec into per-site shards and builds their frameworks.
// Nothing runs until Start.
func New(cfg Config) *Federation {
	spec := cfg.Spec
	if spec == nil {
		spec = testbed.DefaultSpec
	}
	configure := cfg.Configure
	if configure == nil {
		configure = func(string, int64) core.Config { return core.DefaultConfig() }
	}
	// Group clusters by site in first-appearance order, so shard order is a
	// deterministic function of the spec.
	var sites []string
	bySiteSpec := map[string][]testbed.ClusterSpec{}
	for _, cs := range spec {
		if _, ok := bySiteSpec[cs.Site]; !ok {
			sites = append(sites, cs.Site)
		}
		bySiteSpec[cs.Site] = append(bySiteSpec[cs.Site], cs)
	}

	fed := &Federation{
		cfg:           cfg,
		bySite:        make(map[string]*Shard, len(sites)),
		indexOf:       make(map[string]int, len(sites)),
		workers:       cfg.Workers,
		barrier:       cfg.Barrier,
		grid:          faults.NewGridInjector(),
		announced:     map[int]bool{},
		healAnnounced: map[int]bool{},
	}
	if fed.workers <= 0 {
		fed.workers = runtime.GOMAXPROCS(0)
	}
	if fed.barrier <= 0 {
		fed.barrier = simclock.Week
	}
	for i, site := range sites {
		seed := ShardSeed(cfg.Seed, site)
		c := configure(site, seed)
		c.Seed = seed
		c.Spec = bySiteSpec[site]
		sh := &Shard{Site: site, Seed: seed, F: core.New(c)}
		fed.shards = append(fed.shards, sh)
		fed.bySite[site] = sh
		fed.indexOf[site] = i
	}
	fed.behind = make([]simclock.Time, len(fed.shards))
	return fed
}

// Shards returns the shards in site order.
func (fed *Federation) Shards() []*Shard { return fed.shards }

// Workers returns the shard-step concurrency bound (resolved, never 0).
func (fed *Federation) Workers() int { return fed.workers }

// Shard returns the shard owning the named site, or nil.
func (fed *Federation) Shard(site string) *Shard { return fed.bySite[site] }

// Sites returns the shard site names in shard order.
func (fed *Federation) Sites() []string {
	out := make([]string, len(fed.shards))
	for i, sh := range fed.shards {
		out[i] = sh.Site
	}
	return out
}

// Now returns the federated clock: the simulated time every healthy shard
// has been advanced to (they finish every Advance in lockstep; a downed
// shard lags by its accrued debt until it heals and catches up).
func (fed *Federation) Now() simclock.Time {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return fed.now
}

// Start arms every shard's processes (CI jobs, schedulers, faults,
// operators, user load). Idempotent, like Framework.Start.
func (fed *Federation) Start() {
	if fed.started {
		return
	}
	fed.started = true
	for _, sh := range fed.shards {
		sh.F.Start()
	}
}

// Advance steps every shard by d of simulated time, in barrier ticks: all
// shards complete tick k before any shard begins tick k+1. Within a tick
// shards step on up to Workers goroutines; because they share no state,
// the outcome is bit-identical to the serial order.
//
// Chaos events interleave deterministically with the barriers: before each
// tick the due part of the disaster schedule is applied, a shard downed by
// an active event is frozen for the tick (it accrues clock debt instead of
// stepping), and a healed shard repays its debt with catch-up ticks before
// rejoining the lockstep. Because the plan for a tick is computed once
// under the federation lock and the shards share nothing, serial and
// parallel advances stay bit-identical even mid-disaster.
func (fed *Federation) Advance(d simclock.Time) {
	for d > 0 {
		fed.mu.Lock()
		tick := fed.barrier
		if tick > d {
			tick = d
		}
		plan := fed.planTickLocked(tick)
		fed.mu.Unlock()
		fed.runPlan(plan)
		d -= tick
	}
	// Apply schedule entries landing exactly on the new clock so an event
	// due at the end of this Advance is visible (down routes, degraded
	// markers) as soon as Advance returns.
	fed.mu.Lock()
	fed.applyDueLocked()
	fed.mu.Unlock()
	fed.notifyGrid()
}

// shardWork is one shard's slice of a tick plan: how far to step and which
// grid-event tickets to file or close in the shard's bug tracker first.
type shardWork struct {
	idx  int
	step simclock.Time
	file []gridTicket
	fix  []string
}

// gridTicket is the bug-report form of a grid event, captured as plain
// strings under the federation lock so the stepping goroutines never touch
// live event state.
type gridTicket struct {
	sig, title, target string
}

// planTickLocked applies the due chaos schedule, plans every shard's work
// for one tick and advances the federated clock. Caller holds fed.mu.
func (fed *Federation) planTickLocked(tick simclock.Time) []shardWork {
	fed.applyDueLocked()

	// Grid events announce themselves to the shard bug trackers exactly
	// once: a fresh event files one ticket per reachable shard (one root
	// cause, not N node tickets), a fresh heal closes them.
	var file []gridTicket
	var fix []string
	for _, e := range fed.grid.Active() {
		if fed.announced[e.ID] {
			continue
		}
		fed.announced[e.ID] = true
		file = append(file, gridTicket{
			sig:    e.Signature(),
			title:  e.Title(),
			target: strings.Join(e.Sites, "+"),
		})
	}
	for _, e := range fed.grid.History() {
		if !e.Healed || fed.healAnnounced[e.ID] {
			continue
		}
		fed.healAnnounced[e.ID] = true
		if !fed.announced[e.ID] {
			// Healed before any shard heard of it: nothing to close.
			fed.announced[e.ID] = true
			continue
		}
		fix = append(fix, e.Signature())
	}

	plan := make([]shardWork, 0, len(fed.shards))
	for i, sh := range fed.shards {
		w := shardWork{idx: i}
		if fed.grid.SiteDownAt(sh.Site, fed.now) {
			// Frozen at the barrier: the shard skips the tick and accrues
			// clock debt to repay on heal.
			fed.behind[i] += tick
		} else {
			due := fed.behind[i] + tick
			if due > 0 {
				w.step = due
				fed.behind[i] = 0
			} else {
				// The shard ran ahead via Gateway.AdvanceSite; let the
				// federation clock catch up to it instead.
				fed.behind[i] = due
			}
			w.file = file
			w.fix = fix
		}
		if w.step > 0 || len(w.file) > 0 || len(w.fix) > 0 {
			plan = append(plan, w)
		}
	}
	fed.now += tick
	return plan
}

// applyDueLocked injects schedule entries and heals whose time has come,
// and self-heals exhausted rolling maintenances. Caller holds fed.mu.
func (fed *Federation) applyDueLocked() {
	rest := fed.pending[:0]
	for _, e := range fed.pending {
		if e.At > fed.now {
			rest = append(rest, e)
			continue
		}
		window := simclock.Time(0)
		if e.Kind == faults.RollingMaintenance {
			window = e.Duration
		}
		ev, err := fed.grid.Inject(e.Kind, e.Sites, e.At, window)
		if err != nil {
			// Entries are validated in ScheduleChaos; an error here means a
			// site list raced a spec change, which cannot happen — drop it.
			continue
		}
		if e.Kind != faults.RollingMaintenance && e.Duration > 0 {
			fed.pendingHeals = append(fed.pendingHeals, pendingHeal{id: ev.ID, at: e.At + e.Duration})
		}
	}
	fed.pending = rest

	heals := fed.pendingHeals[:0]
	for _, h := range fed.pendingHeals {
		if h.at > fed.now {
			heals = append(heals, h)
			continue
		}
		// Ignore "not active": the event may have been healed by hand via
		// HealGrid before its scheduled heal came due.
		_ = fed.grid.Heal(h.id, h.at)
	}
	fed.pendingHeals = heals
	fed.grid.AutoHeal(fed.now)
}

// runPlan executes one tick's plan: every planned shard files/closes its
// grid tickets and steps its campaign, on up to Workers goroutines. Shards
// share nothing and the plan is fixed, so worker count cannot change the
// outcome.
func (fed *Federation) runPlan(plan []shardWork) {
	workers := fed.workers
	if workers > len(plan) {
		workers = len(plan)
	}
	if workers <= 1 {
		for _, w := range plan {
			fed.runShardWork(w)
		}
		return
	}
	jobs := make(chan shardWork)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//g5k:allow baregoroutine barrier workers step share-nothing shards; serial and parallel schedules are bit-identical (E17/E18 gates)
		go func() {
			defer wg.Done()
			for w := range jobs {
				fed.runShardWork(w)
			}
		}()
	}
	for _, w := range plan {
		jobs <- w
	}
	close(jobs)
	wg.Wait()
}

// runShardWork applies one shard's slice of a tick plan. Ticket work and
// each catch-up chunk pass through the step gate separately, so an embedder
// holding per-shard locks (the gateway) never blocks readers for longer
// than one barrier tick.
func (fed *Federation) runShardWork(w shardWork) {
	sh := fed.shards[w.idx]
	gate := fed.stepGate
	if gate == nil {
		gate = func(_ string, step func()) { step() }
	}
	if len(w.file) > 0 || len(w.fix) > 0 {
		gate(sh.Site, func() {
			for _, t := range w.file {
				sh.F.Bugs.File(t.sig, t.title, "grid", t.target)
			}
			for _, sig := range w.fix {
				if b := sh.F.Bugs.BySignature(sig); b != nil && b.State == bugs.Open {
					sh.F.Bugs.Fix(b.ID)
				}
			}
		})
	}
	for rest := w.step; rest > 0; {
		chunk := fed.barrier
		if chunk > rest {
			chunk = rest
		}
		gate(sh.Site, func() { sh.F.RunFor(chunk) })
		rest -= chunk
	}
}

// MergeWeekly sums per-site weekly reports into one federated report:
// counters add up week by week, and weeks in which no site reported are
// skipped (matching Framework.WeeklyReport's sparse shape).
func MergeWeekly(reports ...[]core.WeekCounts) []core.WeekCounts {
	byWeek := map[int]core.WeekCounts{}
	maxWeek := -1
	for _, rep := range reports {
		for _, w := range rep {
			acc := byWeek[w.Week]
			acc.Week = w.Week
			acc.Success += w.Success
			acc.Failure += w.Failure
			acc.Unstable += w.Unstable
			byWeek[w.Week] = acc
			if w.Week > maxWeek {
				maxWeek = w.Week
			}
		}
	}
	out := make([]core.WeekCounts, 0, len(byWeek))
	for w := 0; w <= maxWeek; w++ {
		if acc, ok := byWeek[w]; ok {
			out = append(out, acc)
		}
	}
	return out
}

// WeeklyReport returns the federated weekly build statistics: the sum of
// every shard's report, week by week.
func (fed *Federation) WeeklyReport() []core.WeekCounts {
	reports := make([][]core.WeekCounts, len(fed.shards))
	for i, sh := range fed.shards {
		reports[i] = sh.F.WeeklyReport()
	}
	return MergeWeekly(reports...)
}

// SiteSummary is one shard's slice of a federated summary. The struct stays
// comparable (==) on purpose: the determinism gates compare serial and
// parallel site summaries with plain equality.
type SiteSummary struct {
	Site    string
	Summary core.CampaignSummary
	// Down marks a site frozen by an active outage or maintenance window;
	// Unreachable marks one isolated by a WAN partition (still stepping,
	// excluded from the merge until heal).
	Down        bool
	Unreachable bool
}

// Summary is the outcome of a federated campaign: the cross-site merge
// plus every site's own summary (in shard order). While the federation is
// degraded, Merged covers only the reachable sites — the partitioned
// groups' numbers reconcile into the merge once the events heal.
type Summary struct {
	Merged           core.CampaignSummary
	Sites            []SiteSummary
	Degraded         bool
	DownSites        []string
	UnreachableSites []string
}

func (s Summary) String() string {
	if s.Degraded {
		return fmt.Sprintf("federation of %d sites (degraded: %d down, %d unreachable), %s",
			len(s.Sites), len(s.DownSites), len(s.UnreachableSites), s.Merged)
	}
	return fmt.Sprintf("federation of %d sites, %s", len(s.Sites), s.Merged)
}

// Summary merges the shard campaigns: counters sum across sites, the
// trend endpoints are re-selected from the merged weekly report with the
// monolithic volume rule, and Duration is the federated clock. Sites downed
// or isolated by an active grid event are excluded from the merge (their
// own SiteSummary still reports their numbers) until the event heals.
func (fed *Federation) Summary() Summary {
	fed.mu.Lock()
	now := fed.now
	down := fed.downSitesLocked()
	unreachable := fed.unreachableSitesLocked()
	fed.mu.Unlock()

	out := Summary{
		Sites:            make([]SiteSummary, len(fed.shards)),
		Degraded:         len(down)+len(unreachable) > 0,
		DownSites:        down,
		UnreachableSites: unreachable,
	}
	isDown := sliceSet(down)
	isUnreachable := sliceSet(unreachable)
	out.Merged.Duration = now
	var mergedReports [][]core.WeekCounts
	for i, sh := range fed.shards {
		s := sh.F.Summary()
		out.Sites[i] = SiteSummary{
			Site:        sh.Site,
			Summary:     s,
			Down:        isDown[sh.Site],
			Unreachable: isUnreachable[sh.Site],
		}
		if isDown[sh.Site] || isUnreachable[sh.Site] {
			continue
		}
		out.Merged.Builds += s.Builds
		out.Merged.BugsFiled += s.BugsFiled
		out.Merged.BugsFixed += s.BugsFixed
		out.Merged.BugsOpen += s.BugsOpen
		out.Merged.ActiveFaults += s.ActiveFaults
		mergedReports = append(mergedReports, sh.F.WeeklyReport())
	}
	out.Merged.FirstWeek, out.Merged.LastWeek = core.TrendWeeks(MergeWeekly(mergedReports...))
	return out
}

// sliceSet turns a site list into a membership set.
func sliceSet(sites []string) map[string]bool {
	m := make(map[string]bool, len(sites))
	for _, s := range sites {
		m[s] = true
	}
	return m
}

// SpecSites returns the distinct site names of a cluster specification in
// first-appearance order (nil = testbed.DefaultSpec). Exposed for binaries
// that want to enumerate a federation's layout before building it.
func SpecSites(spec []testbed.ClusterSpec) []string {
	if spec == nil {
		spec = testbed.DefaultSpec
	}
	var sites []string
	seen := map[string]bool{}
	for _, cs := range spec {
		if !seen[cs.Site] {
			seen[cs.Site] = true
			sites = append(sites, cs.Site)
		}
	}
	return sites
}
