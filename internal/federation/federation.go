// Package federation coordinates a campaign split into per-cluster
// micro-shards behind per-site labels — the architecture the paper's
// subject actually has. Grid'5000 is not one scheduler: it is a federation
// of sites, each running its own OAR, its own monitoring and its own
// operations team, stitched together behind common APIs. The monolithic
// core.Framework collapses that into a single world; a Federation instead
// builds one complete Framework per cluster (its own OAR shard, monitor
// shard, fault and operator processes, CI server, bug tracker and
// simulated clock) and owns the barriers that keep the shards' clocks in
// lockstep. The site remains the unit of identity — chaos events, routing,
// summaries and clock debt are all site-granular; all of a site's
// micro-shards freeze, heal and step together — but the unit of *work* is
// the cluster, so the barrier's critical path is the mean shard, not the
// fattest site (nancy ≈ 2.4x luxembourg under per-site sharding).
//
// Determinism is the load-bearing property. Every micro-shard draws from
// an independent RNG stream whose seed is a pure function of (campaign
// seed, site name, cluster name) — see ShardSeed — and shards share no
// mutable state whatsoever, so stepping them serially, across GOMAXPROCS
// goroutines, or grouped whole-site-per-worker (Config.SiteGrouped, the
// legacy schedule) produces bit-identical campaign summaries. That is the
// same serial ≡ parallel discipline core.Fleet proved for multi-seed
// sweeps, now applied *inside* one campaign: Advance splits simulated time
// into barrier ticks (a week by default), steps every shard through the
// tick, waits on the barrier, and repeats. Within a tick the workers
// work-steal: micro-shards are queued longest-processing-time-first (by
// node count, the deterministic cost model) and idle workers pull the next
// unit from the queue, so uneven sites no longer serialize the tick. The
// determinism test and BenchmarkE17/E21 gate exactly this.
//
// Reporting merges shard outcomes the way the real federation's status
// pages do: per-site summaries fold a site's micro-shards back into one
// SiteSummary (weekly verdict counters sum week by week, bug and build
// counters sum), and the trend endpoints are re-selected from the merged
// report with the same volume threshold a monolithic campaign uses
// (core.TrendWeeks).
package federation

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Config parameterises a federated campaign.
type Config struct {
	// Seed is the campaign seed; each micro-shard derives its own stream
	// from it via ShardSeed.
	Seed int64

	// Spec is the cluster specification to federate (nil =
	// testbed.DefaultSpec). Micro-shards are carved per cluster, grouped by
	// distinct Site in first-appearance order.
	Spec []testbed.ClusterSpec

	// Workers bounds how many barrier workers pull micro-shards
	// concurrently inside one tick. 0 means GOMAXPROCS; 1 steps shards
	// serially. The campaign outcome is identical either way.
	Workers int

	// Barrier is the tick length between cross-site clock barriers
	// (0 = one simulated week). Shards never drift further apart than one
	// barrier while an Advance is in flight, and always finish it in
	// lockstep.
	Barrier simclock.Time

	// SiteGrouped restores the legacy per-site schedule: each barrier
	// worker steps one whole site's micro-shards back to back, so a tick's
	// critical path is the fattest site (exactly the old shard-per-site
	// fan-out). The simulation itself is identical — same micro-shards,
	// same seeds — which is why serial, work-stealing and site-grouped
	// advances are all bit-identical; only the wall-clock shape differs.
	SiteGrouped bool

	// Configure builds a shard's campaign profile from its site label (nil
	// = core.DefaultConfig). The returned Config's Seed and Spec are
	// overridden with the micro-shard's derived seed and single cluster.
	Configure func(site string, seed int64) core.Config
}

// Shard is one cluster's slice of the federated campaign: a complete
// framework over just that cluster, labeled with the site that owns it.
type Shard struct {
	Site    string
	Cluster string
	Seed    int64
	// Nodes is the shard's node count — the deterministic cost model the
	// work-stealing barrier orders its queue by.
	Nodes int
	F     *core.Framework

	idx int // position in Federation.shards
}

// Federation owns the per-cluster micro-shards and their lockstep clocks.
type Federation struct {
	cfg         Config
	shards      []*Shard            // site-grouped, cluster order within a site
	sites       []string            // distinct site labels, first-appearance order
	siteIdx     map[string]int      // site → index into sites/behind
	bySite      map[string][]*Shard // site → its micro-shards in cluster order
	workers     int
	barrier     simclock.Time
	siteGrouped bool
	started     bool

	// mu guards the federated clock and all chaos state below. Shard
	// frameworks are never touched under mu: Advance plans a tick under the
	// lock and executes it outside, so injecting or healing a grid event
	// from another goroutine (the gateway's /chaos endpoints) never blocks
	// behind a stepping shard.
	mu  sync.Mutex
	now simclock.Time

	// behind[i] is how far site i's micro-shard clocks lag the federated
	// clock: a downed site accrues debt each tick it sits frozen at the
	// barrier, and repays it with catch-up ticks on heal. Negative values
	// mean the site ran ahead (Gateway.AdvanceSite). Debt is site-granular
	// because chaos is: all of a site's micro-shards freeze and catch up
	// together, which is what keeps them in lockstep with each other.
	behind []simclock.Time

	// grid owns the active site-scale events; pending/pendingHeals hold
	// the not-yet-due schedule. announced/healAnnounced track which events
	// already had their bug tickets filed/closed in the shard trackers.
	grid          *faults.GridInjector
	pending       []faults.ScheduleEntry
	pendingHeals  []pendingHeal
	announced     map[int]bool
	healAnnounced map[int]bool

	// stepGate, when set, wraps every micro-shard step so an embedder (the
	// gateway) can interleave its own per-shard locking with the barrier
	// ticks.
	stepGate func(site, cluster string, step func())

	// gridListener, when set, is invoked (outside fed.mu) after any call
	// that can change grid availability or the federated clock: InjectGrid,
	// HealGrid and Advance. The gateway hangs its admission-queue pump off
	// this hook so a site outage invalidates queued reservations immediately
	// instead of waiting for the next submit.
	gridListener func()
}

// pendingHeal schedules the heal of an injected event.
type pendingHeal struct {
	id int
	at simclock.Time
}

// ShardSeed derives a micro-shard's RNG seed from the campaign seed, its
// site label and its cluster name (FNV-1a over site, a zero separator
// byte, then cluster, mixed into the base). The separator keeps the
// (site, cluster) split unambiguous — ("a","b") and ("ab","") hash apart —
// and the function is pure, so a shard's entire campaign depends only on
// (seed, site, cluster, profile): not on shard order, worker count,
// scheduling, or which other clusters the spec carries.
func ShardSeed(base int64, site, cluster string) int64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	for _, b := range []byte(site) {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ 0) * prime // separator: site/cluster boundary
	for _, b := range []byte(cluster) {
		h = (h ^ uint64(b)) * prime
	}
	return base ^ int64(h&0x7fffffffffffffff)
}

// New carves the spec into per-cluster micro-shards (grouped by site in
// first-appearance order) and builds their frameworks. Nothing runs until
// Start.
func New(cfg Config) *Federation {
	spec := cfg.Spec
	if spec == nil {
		spec = testbed.DefaultSpec
	}
	configure := cfg.Configure
	if configure == nil {
		configure = func(string, int64) core.Config { return core.DefaultConfig() }
	}
	// Group clusters by site in first-appearance order, so shard order is a
	// deterministic function of the spec.
	var sites []string
	bySiteSpec := map[string][]testbed.ClusterSpec{}
	for _, cs := range spec {
		if _, ok := bySiteSpec[cs.Site]; !ok {
			sites = append(sites, cs.Site)
		}
		bySiteSpec[cs.Site] = append(bySiteSpec[cs.Site], cs)
	}

	fed := &Federation{
		cfg:           cfg,
		sites:         sites,
		siteIdx:       make(map[string]int, len(sites)),
		bySite:        make(map[string][]*Shard, len(sites)),
		workers:       cfg.Workers,
		barrier:       cfg.Barrier,
		siteGrouped:   cfg.SiteGrouped,
		grid:          faults.NewGridInjector(),
		announced:     map[int]bool{},
		healAnnounced: map[int]bool{},
	}
	if fed.workers <= 0 {
		fed.workers = runtime.GOMAXPROCS(0)
	}
	if fed.barrier <= 0 {
		fed.barrier = simclock.Week
	}
	for si, site := range sites {
		fed.siteIdx[site] = si
		for _, cs := range bySiteSpec[site] {
			seed := ShardSeed(cfg.Seed, site, cs.Name)
			c := configure(site, seed)
			c.Seed = seed
			c.Spec = []testbed.ClusterSpec{cs}
			sh := &Shard{
				Site:    site,
				Cluster: cs.Name,
				Seed:    seed,
				Nodes:   cs.NodeCount,
				F:       core.New(c),
				idx:     len(fed.shards),
			}
			fed.shards = append(fed.shards, sh)
			fed.bySite[site] = append(fed.bySite[site], sh)
		}
	}
	fed.behind = make([]simclock.Time, len(fed.sites))
	return fed
}

// Shards returns the micro-shards, grouped by site in first-appearance
// order, cluster order within a site.
func (fed *Federation) Shards() []*Shard { return fed.shards }

// Workers returns the barrier-worker concurrency bound (resolved, never 0).
func (fed *Federation) Workers() int { return fed.workers }

// Shard returns the named site's first micro-shard (its coordinator
// cluster), or nil. All of a site's micro-shards share one clock lockstep,
// so the coordinator answers site-level clock and topology questions.
func (fed *Federation) Shard(site string) *Shard {
	shards := fed.bySite[site]
	if len(shards) == 0 {
		return nil
	}
	return shards[0]
}

// SiteShards returns the named site's micro-shards in cluster order (nil
// for an unknown site).
func (fed *Federation) SiteShards(site string) []*Shard { return fed.bySite[site] }

// Sites returns the distinct site labels in first-appearance order.
func (fed *Federation) Sites() []string { return fed.sites }

// Now returns the federated clock: the simulated time every healthy site
// has been advanced to (they finish every Advance in lockstep; a downed
// site lags by its accrued debt until it heals and catches up).
func (fed *Federation) Now() simclock.Time {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return fed.now
}

// Start arms every shard's processes (CI jobs, schedulers, faults,
// operators, user load). Idempotent, like Framework.Start.
func (fed *Federation) Start() {
	if fed.started {
		return
	}
	fed.started = true
	for _, sh := range fed.shards {
		sh.F.Start()
	}
}

// Advance steps every shard by d of simulated time, in barrier ticks: all
// shards complete tick k before any shard begins tick k+1. Within a tick
// the workers pull micro-shards from a deterministic cost-ordered queue
// (longest-processing-time-first by node count); because the shards share
// no state and the queue is fixed before the first pull, the outcome is
// bit-identical to the serial order no matter how the pulls interleave.
//
// Chaos events interleave deterministically with the barriers: before each
// tick the due part of the disaster schedule is applied, a site downed by
// an active event is frozen for the tick (every one of its micro-shards
// skips it atomically; the site accrues clock debt instead of stepping),
// and a healed site repays its debt with catch-up ticks before rejoining
// the lockstep. Because the plan for a tick is computed once under the
// federation lock and the shards share nothing, serial and parallel
// advances stay bit-identical even mid-disaster.
func (fed *Federation) Advance(d simclock.Time) {
	for d > 0 {
		fed.mu.Lock()
		tick := fed.barrier
		if tick > d {
			tick = d
		}
		plan := fed.planTickLocked(tick)
		fed.mu.Unlock()
		fed.runPlan(plan)
		d -= tick
	}
	// Apply schedule entries landing exactly on the new clock so an event
	// due at the end of this Advance is visible (down routes, degraded
	// markers) as soon as Advance returns.
	fed.mu.Lock()
	fed.applyDueLocked()
	fed.mu.Unlock()
	fed.notifyGrid()
}

// shardWork is one micro-shard's slice of a tick plan: how far to step and
// which grid-event tickets to file or close in the shard's bug tracker
// first. Tickets ride only on a site's coordinator shard (its first
// cluster) — one root cause is one ticket per site, not one per cluster.
type shardWork struct {
	idx  int
	step simclock.Time
	file []gridTicket
	fix  []string
}

// gridTicket is the bug-report form of a grid event, captured as plain
// strings under the federation lock so the stepping goroutines never touch
// live event state.
type gridTicket struct {
	sig, title, target string
}

// planTickLocked applies the due chaos schedule, plans every shard's work
// for one tick and advances the federated clock. Caller holds fed.mu.
func (fed *Federation) planTickLocked(tick simclock.Time) []shardWork {
	fed.applyDueLocked()

	// Grid events announce themselves to the shard bug trackers exactly
	// once: a fresh event files one ticket per reachable site (one root
	// cause, not N cluster tickets), a fresh heal closes them.
	var file []gridTicket
	var fix []string
	for _, e := range fed.grid.Active() {
		if fed.announced[e.ID] {
			continue
		}
		fed.announced[e.ID] = true
		file = append(file, gridTicket{
			sig:    e.Signature(),
			title:  e.Title(),
			target: strings.Join(e.Sites, "+"),
		})
	}
	for _, e := range fed.grid.History() {
		if !e.Healed || fed.healAnnounced[e.ID] {
			continue
		}
		fed.healAnnounced[e.ID] = true
		if !fed.announced[e.ID] {
			// Healed before any shard heard of it: nothing to close.
			fed.announced[e.ID] = true
			continue
		}
		fix = append(fix, e.Signature())
	}

	plan := make([]shardWork, 0, len(fed.shards))
	for si, site := range fed.sites {
		if fed.grid.SiteDownAt(site, fed.now) {
			// Frozen at the barrier: every micro-shard of the site skips the
			// tick atomically and the site accrues clock debt to repay on
			// heal.
			fed.behind[si] += tick
			continue
		}
		due := fed.behind[si] + tick
		step := simclock.Time(0)
		if due > 0 {
			step = due
			fed.behind[si] = 0
		} else {
			// The site ran ahead via Gateway.AdvanceSite; let the federation
			// clock catch up to it instead.
			fed.behind[si] = due
		}
		for ci, sh := range fed.bySite[site] {
			w := shardWork{idx: sh.idx, step: step}
			if ci == 0 {
				w.file = file
				w.fix = fix
			}
			if w.step > 0 || len(w.file) > 0 || len(w.fix) > 0 {
				plan = append(plan, w)
			}
		}
	}
	fed.now += tick
	return plan
}

// applyDueLocked injects schedule entries and heals whose time has come,
// and self-heals exhausted rolling maintenances. Caller holds fed.mu.
func (fed *Federation) applyDueLocked() {
	rest := fed.pending[:0]
	for _, e := range fed.pending {
		if e.At > fed.now {
			rest = append(rest, e)
			continue
		}
		window := simclock.Time(0)
		if e.Kind == faults.RollingMaintenance {
			window = e.Duration
		}
		ev, err := fed.grid.Inject(e.Kind, e.Sites, e.At, window)
		if err != nil {
			// Entries are validated in ScheduleChaos; an error here means a
			// site list raced a spec change, which cannot happen — drop it.
			continue
		}
		if e.Kind != faults.RollingMaintenance && e.Duration > 0 {
			fed.pendingHeals = append(fed.pendingHeals, pendingHeal{id: ev.ID, at: e.At + e.Duration})
		}
	}
	fed.pending = rest

	heals := fed.pendingHeals[:0]
	for _, h := range fed.pendingHeals {
		if h.at > fed.now {
			heals = append(heals, h)
			continue
		}
		// Ignore "not active": the event may have been healed by hand via
		// HealGrid before its scheduled heal came due.
		_ = fed.grid.Heal(h.id, h.at)
	}
	fed.pendingHeals = heals
	fed.grid.AutoHeal(fed.now)
}

// workUnit is one pull from the barrier's work-stealing queue: either a
// single micro-shard (the default) or a whole site's micro-shards back to
// back (SiteGrouped). cost is the unit's node count; first is the lowest
// shard index inside, the deterministic tiebreak.
type workUnit struct {
	cost  int
	first int
	work  []shardWork
}

// planUnits folds a tick plan into scheduler work units and sorts them
// longest-processing-time-first (node count descending, shard index
// ascending on ties) — the classic LPT heuristic: with uniform per-node
// cost it bounds the barrier's makespan at (4/3 − 1/3w)× optimal, and the
// order is a pure function of the plan, so every run pulls from the same
// queue.
func (fed *Federation) planUnits(plan []shardWork) []workUnit {
	var units []workUnit
	if fed.siteGrouped {
		// Legacy schedule: one unit per site. The plan is site-contiguous,
		// so grouping consecutive entries by site label suffices.
		for start := 0; start < len(plan); {
			site := fed.shards[plan[start].idx].Site
			end := start
			cost := 0
			for end < len(plan) && fed.shards[plan[end].idx].Site == site {
				cost += fed.shards[plan[end].idx].Nodes
				end++
			}
			units = append(units, workUnit{cost: cost, first: plan[start].idx, work: plan[start:end]})
			start = end
		}
	} else {
		for i := range plan {
			units = append(units, workUnit{
				cost:  fed.shards[plan[i].idx].Nodes,
				first: plan[i].idx,
				work:  plan[i : i+1],
			})
		}
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].cost != units[j].cost {
			return units[i].cost > units[j].cost
		}
		return units[i].first < units[j].first
	})
	return units
}

// runPlan executes one tick's plan: every planned shard files/closes its
// grid tickets and steps its campaign. With more than one worker the units
// are pulled work-stealing style — an atomic cursor over the LPT-ordered
// queue — so an idle worker immediately takes the next-heaviest remaining
// unit instead of waiting on a static assignment. Shards share nothing and
// the queue is fixed before the first pull, so worker count and pull
// interleaving cannot change the outcome.
func (fed *Federation) runPlan(plan []shardWork) {
	if len(plan) == 0 {
		return
	}
	units := fed.planUnits(plan)
	workers := fed.workers
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, w := range plan {
			fed.runShardWork(w)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//g5k:allow baregoroutine work-stealing barrier workers pull share-nothing micro-shards from a queue fixed before the first pull; pull interleaving cannot change the outcome (E17/E18/E21 gates)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(units) {
					return
				}
				for _, w := range units[i].work {
					fed.runShardWork(w)
				}
			}
		}()
	}
	wg.Wait()
}

// runShardWork applies one micro-shard's slice of a tick plan. Ticket work
// and each catch-up chunk pass through the step gate separately, so an
// embedder holding per-shard locks (the gateway) never blocks readers for
// longer than one barrier tick.
func (fed *Federation) runShardWork(w shardWork) {
	sh := fed.shards[w.idx]
	gate := fed.stepGate
	if gate == nil {
		gate = func(_, _ string, step func()) { step() }
	}
	if len(w.file) > 0 || len(w.fix) > 0 {
		gate(sh.Site, sh.Cluster, func() {
			for _, t := range w.file {
				sh.F.Bugs.File(t.sig, t.title, "grid", t.target)
			}
			for _, sig := range w.fix {
				if b := sh.F.Bugs.BySignature(sig); b != nil && b.State == bugs.Open {
					sh.F.Bugs.Fix(b.ID)
				}
			}
		})
	}
	for rest := w.step; rest > 0; {
		chunk := fed.barrier
		if chunk > rest {
			chunk = rest
		}
		gate(sh.Site, sh.Cluster, func() { sh.F.RunFor(chunk) })
		rest -= chunk
	}
}

// MergeWeekly sums per-site weekly reports into one federated report:
// counters add up week by week, and weeks in which no site reported are
// skipped (matching Framework.WeeklyReport's sparse shape).
func MergeWeekly(reports ...[]core.WeekCounts) []core.WeekCounts {
	byWeek := map[int]core.WeekCounts{}
	maxWeek := -1
	for _, rep := range reports {
		for _, w := range rep {
			acc := byWeek[w.Week]
			acc.Week = w.Week
			acc.Success += w.Success
			acc.Failure += w.Failure
			acc.Unstable += w.Unstable
			byWeek[w.Week] = acc
			if w.Week > maxWeek {
				maxWeek = w.Week
			}
		}
	}
	out := make([]core.WeekCounts, 0, len(byWeek))
	for w := 0; w <= maxWeek; w++ {
		if acc, ok := byWeek[w]; ok {
			out = append(out, acc)
		}
	}
	return out
}

// WeeklyReport returns the federated weekly build statistics: the sum of
// every shard's report, week by week.
func (fed *Federation) WeeklyReport() []core.WeekCounts {
	reports := make([][]core.WeekCounts, len(fed.shards))
	for i, sh := range fed.shards {
		reports[i] = sh.F.WeeklyReport()
	}
	return MergeWeekly(reports...)
}

// siteSummary folds one site's micro-shard campaigns into a single
// CampaignSummary, exactly as a per-site shard would have reported it:
// counters sum across clusters, the trend endpoints are re-selected from
// the site's merged weekly report, and Duration is the site's lockstep
// clock (every micro-shard of a site shares it by construction).
func (fed *Federation) siteSummary(site string) core.CampaignSummary {
	var out core.CampaignSummary
	var weeklies [][]core.WeekCounts
	for _, sh := range fed.bySite[site] {
		s := sh.F.Summary()
		out.Duration = s.Duration
		out.Builds += s.Builds
		out.BugsFiled += s.BugsFiled
		out.BugsFixed += s.BugsFixed
		out.BugsOpen += s.BugsOpen
		out.ActiveFaults += s.ActiveFaults
		weeklies = append(weeklies, sh.F.WeeklyReport())
	}
	out.FirstWeek, out.LastWeek = core.TrendWeeks(MergeWeekly(weeklies...))
	return out
}

// SiteSummary is one site's slice of a federated summary — its
// micro-shards folded back into the per-site view. The struct stays
// comparable (==) on purpose: the determinism gates compare serial,
// parallel and site-grouped summaries with plain equality.
type SiteSummary struct {
	Site    string
	Summary core.CampaignSummary
	// Down marks a site frozen by an active outage or maintenance window;
	// Unreachable marks one isolated by a WAN partition (still stepping,
	// excluded from the merge until heal).
	Down        bool
	Unreachable bool
}

// Summary is the outcome of a federated campaign: the cross-site merge
// plus every site's own summary (in site order). While the federation is
// degraded, Merged covers only the reachable sites — the partitioned
// groups' numbers reconcile into the merge once the events heal.
type Summary struct {
	Merged           core.CampaignSummary
	Sites            []SiteSummary
	Degraded         bool
	DownSites        []string
	UnreachableSites []string
}

func (s Summary) String() string {
	if s.Degraded {
		return fmt.Sprintf("federation of %d sites (degraded: %d down, %d unreachable), %s",
			len(s.Sites), len(s.DownSites), len(s.UnreachableSites), s.Merged)
	}
	return fmt.Sprintf("federation of %d sites, %s", len(s.Sites), s.Merged)
}

// Summary merges the shard campaigns: counters sum across sites, the
// trend endpoints are re-selected from the merged weekly report with the
// monolithic volume rule, and Duration is the federated clock. Sites downed
// or isolated by an active grid event are excluded from the merge (their
// own SiteSummary still reports their numbers) until the event heals.
func (fed *Federation) Summary() Summary {
	fed.mu.Lock()
	now := fed.now
	down := fed.downSitesLocked()
	unreachable := fed.unreachableSitesLocked()
	fed.mu.Unlock()

	out := Summary{
		Sites:            make([]SiteSummary, len(fed.sites)),
		Degraded:         len(down)+len(unreachable) > 0,
		DownSites:        down,
		UnreachableSites: unreachable,
	}
	isDown := sliceSet(down)
	isUnreachable := sliceSet(unreachable)
	out.Merged.Duration = now
	var mergedReports [][]core.WeekCounts
	for i, site := range fed.sites {
		s := fed.siteSummary(site)
		out.Sites[i] = SiteSummary{
			Site:        site,
			Summary:     s,
			Down:        isDown[site],
			Unreachable: isUnreachable[site],
		}
		if isDown[site] || isUnreachable[site] {
			continue
		}
		out.Merged.Builds += s.Builds
		out.Merged.BugsFiled += s.BugsFiled
		out.Merged.BugsFixed += s.BugsFixed
		out.Merged.BugsOpen += s.BugsOpen
		out.Merged.ActiveFaults += s.ActiveFaults
		for _, sh := range fed.bySite[site] {
			mergedReports = append(mergedReports, sh.F.WeeklyReport())
		}
	}
	out.Merged.FirstWeek, out.Merged.LastWeek = core.TrendWeeks(MergeWeekly(mergedReports...))
	return out
}

// sliceSet turns a site list into a membership set.
func sliceSet(sites []string) map[string]bool {
	m := make(map[string]bool, len(sites))
	for _, s := range sites {
		m[s] = true
	}
	return m
}

// SpecSites returns the distinct site names of a cluster specification in
// first-appearance order (nil = testbed.DefaultSpec). Exposed for binaries
// that want to enumerate a federation's layout before building it.
func SpecSites(spec []testbed.ClusterSpec) []string {
	if spec == nil {
		spec = testbed.DefaultSpec
	}
	var sites []string
	seen := map[string]bool{}
	for _, cs := range spec {
		if !seen[cs.Site] {
			seen[cs.Site] = true
			sites = append(sites, cs.Site)
		}
	}
	return sites
}
