// Package federation coordinates a campaign split into per-site shards —
// the architecture the paper's subject actually has. Grid'5000 is not one
// scheduler: it is a federation of sites, each running its own OAR, its
// own monitoring and its own operations team, stitched together behind
// common APIs. The monolithic core.Framework collapses that into a single
// world; a Federation instead builds one complete Framework per site (its
// own OAR shard, monitor shard, fault and operator processes, CI server,
// bug tracker and simulated clock) and owns the barriers that keep the
// shards' clocks in lockstep.
//
// Determinism is the load-bearing property. Every shard draws from an
// independent RNG stream whose seed is a pure function of (campaign seed,
// site name) — see ShardSeed — and shards share no mutable state
// whatsoever, so stepping them serially or across GOMAXPROCS goroutines
// produces bit-identical campaign summaries. That is the same
// serial ≡ parallel discipline core.Fleet proved for multi-seed sweeps,
// now applied *inside* one campaign: Advance splits simulated time into
// barrier ticks (a week by default), steps every shard through the tick
// on a worker pool, waits on the barrier, and repeats. The determinism
// test and BenchmarkE17_FederatedAdvance gate exactly this.
//
// Reporting merges shard outcomes the way the real federation's status
// pages do: weekly verdict counters sum across sites week by week, bug
// and build counters sum, and the trend endpoints are re-selected from
// the merged report with the same volume threshold a monolithic campaign
// uses (core.TrendWeeks).
package federation

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// Config parameterises a federated campaign.
type Config struct {
	// Seed is the campaign seed; each shard derives its own stream from it
	// via ShardSeed.
	Seed int64

	// Spec is the cluster specification to federate (nil =
	// testbed.DefaultSpec). Shards are carved per distinct Site, in first-
	// appearance order.
	Spec []testbed.ClusterSpec

	// Workers bounds how many shards advance concurrently inside one
	// barrier tick. 0 means GOMAXPROCS; 1 steps shards serially. The
	// campaign outcome is identical either way.
	Workers int

	// Barrier is the tick length between cross-site clock barriers
	// (0 = one simulated week). Shards never drift further apart than one
	// barrier while an Advance is in flight, and always finish it in
	// lockstep.
	Barrier simclock.Time

	// Configure builds a shard's campaign profile (nil =
	// core.DefaultConfig). The returned Config's Seed and Spec are
	// overridden with the shard's derived seed and site clusters.
	Configure func(site string, seed int64) core.Config
}

// Shard is one site's slice of the federated campaign: a complete
// framework over just that site's clusters.
type Shard struct {
	Site string
	Seed int64
	F    *core.Framework
}

// Federation owns the per-site shards and their lockstep clocks.
type Federation struct {
	cfg     Config
	shards  []*Shard
	bySite  map[string]*Shard
	workers int
	barrier simclock.Time
	now     simclock.Time
	started bool
}

// ShardSeed derives a shard's RNG seed from the campaign seed and its site
// name (FNV-1a over the name, mixed into the base). The function is pure,
// so a shard's entire campaign depends only on (seed, site, profile) — not
// on shard order, worker count or scheduling.
func ShardSeed(base int64, site string) int64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(site) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return base ^ int64(h&0x7fffffffffffffff)
}

// New carves the spec into per-site shards and builds their frameworks.
// Nothing runs until Start.
func New(cfg Config) *Federation {
	spec := cfg.Spec
	if spec == nil {
		spec = testbed.DefaultSpec
	}
	configure := cfg.Configure
	if configure == nil {
		configure = func(string, int64) core.Config { return core.DefaultConfig() }
	}
	// Group clusters by site in first-appearance order, so shard order is a
	// deterministic function of the spec.
	var sites []string
	bySiteSpec := map[string][]testbed.ClusterSpec{}
	for _, cs := range spec {
		if _, ok := bySiteSpec[cs.Site]; !ok {
			sites = append(sites, cs.Site)
		}
		bySiteSpec[cs.Site] = append(bySiteSpec[cs.Site], cs)
	}

	fed := &Federation{
		cfg:     cfg,
		bySite:  make(map[string]*Shard, len(sites)),
		workers: cfg.Workers,
		barrier: cfg.Barrier,
	}
	if fed.workers <= 0 {
		fed.workers = runtime.GOMAXPROCS(0)
	}
	if fed.barrier <= 0 {
		fed.barrier = simclock.Week
	}
	for _, site := range sites {
		seed := ShardSeed(cfg.Seed, site)
		c := configure(site, seed)
		c.Seed = seed
		c.Spec = bySiteSpec[site]
		sh := &Shard{Site: site, Seed: seed, F: core.New(c)}
		fed.shards = append(fed.shards, sh)
		fed.bySite[site] = sh
	}
	return fed
}

// Shards returns the shards in site order.
func (fed *Federation) Shards() []*Shard { return fed.shards }

// Workers returns the shard-step concurrency bound (resolved, never 0).
func (fed *Federation) Workers() int { return fed.workers }

// Shard returns the shard owning the named site, or nil.
func (fed *Federation) Shard(site string) *Shard { return fed.bySite[site] }

// Sites returns the shard site names in shard order.
func (fed *Federation) Sites() []string {
	out := make([]string, len(fed.shards))
	for i, sh := range fed.shards {
		out[i] = sh.Site
	}
	return out
}

// Now returns the federated clock: the simulated time every shard has been
// advanced to (they finish every Advance in lockstep).
func (fed *Federation) Now() simclock.Time { return fed.now }

// Start arms every shard's processes (CI jobs, schedulers, faults,
// operators, user load). Idempotent, like Framework.Start.
func (fed *Federation) Start() {
	if fed.started {
		return
	}
	fed.started = true
	for _, sh := range fed.shards {
		sh.F.Start()
	}
}

// Advance steps every shard by d of simulated time, in barrier ticks: all
// shards complete tick k before any shard begins tick k+1. Within a tick
// shards step on up to Workers goroutines; because they share no state,
// the outcome is bit-identical to the serial order.
func (fed *Federation) Advance(d simclock.Time) {
	for d > 0 {
		tick := fed.barrier
		if tick > d {
			tick = d
		}
		fed.stepTick(tick)
		d -= tick
		fed.now += tick
	}
}

// stepTick advances every shard by one tick and waits on the barrier.
func (fed *Federation) stepTick(tick simclock.Time) {
	workers := fed.workers
	if workers > len(fed.shards) {
		workers = len(fed.shards)
	}
	if workers <= 1 {
		for _, sh := range fed.shards {
			sh.F.RunFor(tick)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//g5k:allow baregoroutine barrier workers step share-nothing shards; serial and parallel schedules are bit-identical (E17 gate)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fed.shards[i].F.RunFor(tick)
			}
		}()
	}
	for i := range fed.shards {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// MergeWeekly sums per-site weekly reports into one federated report:
// counters add up week by week, and weeks in which no site reported are
// skipped (matching Framework.WeeklyReport's sparse shape).
func MergeWeekly(reports ...[]core.WeekCounts) []core.WeekCounts {
	byWeek := map[int]core.WeekCounts{}
	maxWeek := -1
	for _, rep := range reports {
		for _, w := range rep {
			acc := byWeek[w.Week]
			acc.Week = w.Week
			acc.Success += w.Success
			acc.Failure += w.Failure
			acc.Unstable += w.Unstable
			byWeek[w.Week] = acc
			if w.Week > maxWeek {
				maxWeek = w.Week
			}
		}
	}
	out := make([]core.WeekCounts, 0, len(byWeek))
	for w := 0; w <= maxWeek; w++ {
		if acc, ok := byWeek[w]; ok {
			out = append(out, acc)
		}
	}
	return out
}

// WeeklyReport returns the federated weekly build statistics: the sum of
// every shard's report, week by week.
func (fed *Federation) WeeklyReport() []core.WeekCounts {
	reports := make([][]core.WeekCounts, len(fed.shards))
	for i, sh := range fed.shards {
		reports[i] = sh.F.WeeklyReport()
	}
	return MergeWeekly(reports...)
}

// SiteSummary is one shard's slice of a federated summary.
type SiteSummary struct {
	Site    string
	Summary core.CampaignSummary
}

// Summary is the outcome of a federated campaign: the cross-site merge
// plus every site's own summary (in shard order).
type Summary struct {
	Merged core.CampaignSummary
	Sites  []SiteSummary
}

func (s Summary) String() string {
	return fmt.Sprintf("federation of %d sites, %s", len(s.Sites), s.Merged)
}

// Summary merges the shard campaigns: counters sum across sites, the
// trend endpoints are re-selected from the merged weekly report with the
// monolithic volume rule, and Duration is the federated clock.
func (fed *Federation) Summary() Summary {
	out := Summary{Sites: make([]SiteSummary, len(fed.shards))}
	out.Merged.Duration = fed.now
	for i, sh := range fed.shards {
		s := sh.F.Summary()
		out.Sites[i] = SiteSummary{Site: sh.Site, Summary: s}
		out.Merged.Builds += s.Builds
		out.Merged.BugsFiled += s.BugsFiled
		out.Merged.BugsFixed += s.BugsFixed
		out.Merged.BugsOpen += s.BugsOpen
		out.Merged.ActiveFaults += s.ActiveFaults
	}
	out.Merged.FirstWeek, out.Merged.LastWeek = core.TrendWeeks(fed.WeeklyReport())
	return out
}

// SpecSites returns the distinct site names of a cluster specification in
// first-appearance order (nil = testbed.DefaultSpec). Exposed for binaries
// that want to enumerate a federation's layout before building it.
func SpecSites(spec []testbed.ClusterSpec) []string {
	if spec == nil {
		spec = testbed.DefaultSpec
	}
	var sites []string
	seen := map[string]bool{}
	for _, cs := range spec {
		if !seen[cs.Site] {
			seen[cs.Site] = true
			sites = append(sites, cs.Site)
		}
	}
	return sites
}
