package federation

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// subSpec narrows the default specification to a few sites, keeping tests
// fast while still exercising multi-shard behaviour.
func subSpec(sites ...string) []testbed.ClusterSpec {
	want := map[string]bool{}
	for _, s := range sites {
		want[s] = true
	}
	var out []testbed.ClusterSpec
	for _, cs := range testbed.DefaultSpec {
		if want[cs.Site] {
			out = append(out, cs)
		}
	}
	return out
}

func TestShardLayout(t *testing.T) {
	fed := New(Config{Seed: 1})
	if got := len(fed.Shards()); got != 8 {
		t.Fatalf("default federation has %d shards, want 8", got)
	}
	seeds := map[int64]string{}
	for _, sh := range fed.Shards() {
		st := sh.F.TB.Stats()
		if st.Sites != 1 {
			t.Fatalf("shard %q spans %d sites", sh.Site, st.Sites)
		}
		if names := sh.F.TB.SiteNames(); len(names) != 1 || names[0] != sh.Site {
			t.Fatalf("shard %q testbed claims sites %v", sh.Site, names)
		}
		if prev, dup := seeds[sh.Seed]; dup {
			t.Fatalf("shards %q and %q derived the same seed %d", prev, sh.Site, sh.Seed)
		}
		seeds[sh.Seed] = sh.Site
		if sh.Seed != ShardSeed(1, sh.Site) {
			t.Fatalf("shard %q seed %d is not ShardSeed(1, site)", sh.Site, sh.Seed)
		}
	}
	// The shard union covers the whole paper-scale testbed.
	var nodes, cores int
	for _, sh := range fed.Shards() {
		st := sh.F.TB.Stats()
		nodes += st.Nodes
		cores += st.Cores
	}
	if nodes != 894 || cores != 8490 {
		t.Fatalf("shard union = %d nodes, %d cores; want 894, 8490", nodes, cores)
	}
	if fed.Shard("nancy") == nil || fed.Shard("atlantis") != nil {
		t.Fatal("Shard lookup broken")
	}
}

func TestShardSeedIsPure(t *testing.T) {
	if ShardSeed(42, "nancy") != ShardSeed(42, "nancy") {
		t.Fatal("ShardSeed not deterministic")
	}
	if ShardSeed(42, "nancy") == ShardSeed(42, "lyon") {
		t.Fatal("ShardSeed does not separate sites")
	}
	if ShardSeed(42, "nancy") == ShardSeed(43, "nancy") {
		t.Fatal("ShardSeed does not separate campaign seeds")
	}
}

// runFederated simulates a federated campaign at the given worker count
// and returns its outcome.
func runFederated(t *testing.T, workers int) (Summary, []core.WeekCounts) {
	t.Helper()
	fed := New(Config{
		Seed:    77,
		Spec:    subSpec("luxembourg", "nantes", "lyon", "sophia"),
		Workers: workers,
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 10
			return cfg
		},
	})
	fed.Start()
	fed.Advance(2 * simclock.Week)
	if fed.Now() != 2*simclock.Week {
		t.Fatalf("federated clock = %v, want 2 weeks", fed.Now())
	}
	for _, sh := range fed.Shards() {
		if sh.F.Clock.Now() != 2*simclock.Week {
			t.Fatalf("shard %q clock = %v, out of lockstep", sh.Site, sh.F.Clock.Now())
		}
	}
	return fed.Summary(), fed.WeeklyReport()
}

// TestFederationSerialParallelDeterminism is the load-bearing property of
// the whole layer: stepping the shards serially or across 4 goroutines
// must produce bit-identical campaign summaries, per site and merged.
// CI also runs this under -race (make fed-check).
func TestFederationSerialParallelDeterminism(t *testing.T) {
	serial, serialWeekly := runFederated(t, 1)
	parallel, parallelWeekly := runFederated(t, 4)

	if len(serial.Sites) != len(parallel.Sites) {
		t.Fatalf("site counts diverged: %d vs %d", len(serial.Sites), len(parallel.Sites))
	}
	for i := range serial.Sites {
		if serial.Sites[i] != parallel.Sites[i] {
			t.Fatalf("site %s diverged between serial and parallel stepping:\nserial:   %+v\nparallel: %+v",
				serial.Sites[i].Site, serial.Sites[i].Summary, parallel.Sites[i].Summary)
		}
	}
	if serial.Merged != parallel.Merged {
		t.Fatalf("merged summary diverged:\nserial:   %+v\nparallel: %+v", serial.Merged, parallel.Merged)
	}
	if !reflect.DeepEqual(serialWeekly, parallelWeekly) {
		t.Fatalf("merged weekly reports diverged:\nserial:   %+v\nparallel: %+v", serialWeekly, parallelWeekly)
	}
	// Sanity: the campaign actually did something on every site.
	if serial.Merged.Builds == 0 {
		t.Fatal("federated campaign completed no builds")
	}
	for _, s := range serial.Sites {
		if s.Summary.Builds == 0 {
			t.Fatalf("site %s completed no builds", s.Site)
		}
	}
}

func TestMergeWeekly(t *testing.T) {
	a := []core.WeekCounts{{Week: 0, Success: 10, Failure: 2}, {Week: 2, Success: 5, Unstable: 1}}
	b := []core.WeekCounts{{Week: 0, Success: 3, Failure: 1}, {Week: 1, Success: 7}}
	got := MergeWeekly(a, b)
	want := []core.WeekCounts{
		{Week: 0, Success: 13, Failure: 3},
		{Week: 1, Success: 7},
		{Week: 2, Success: 5, Unstable: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeWeekly = %+v, want %+v", got, want)
	}
	if out := MergeWeekly(); len(out) != 0 {
		t.Fatalf("MergeWeekly() = %+v, want empty", out)
	}
}

func TestSpecSites(t *testing.T) {
	got := SpecSites(nil)
	want := []string{"grenoble", "lille", "luxembourg", "lyon", "nancy", "nantes", "rennes", "sophia"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SpecSites(nil) = %v, want %v", got, want)
	}
}
