package federation

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// subSpec narrows the default specification to a few sites, keeping tests
// fast while still exercising multi-shard behaviour.
func subSpec(sites ...string) []testbed.ClusterSpec {
	want := map[string]bool{}
	for _, s := range sites {
		want[s] = true
	}
	var out []testbed.ClusterSpec
	for _, cs := range testbed.DefaultSpec {
		if want[cs.Site] {
			out = append(out, cs)
		}
	}
	return out
}

func TestShardLayout(t *testing.T) {
	fed := New(Config{Seed: 1})
	if got := len(fed.Shards()); got != 32 {
		t.Fatalf("default federation has %d micro-shards, want 32 (one per cluster)", got)
	}
	if got := len(fed.Sites()); got != 8 {
		t.Fatalf("default federation has %d sites, want 8", got)
	}
	seeds := map[int64]string{}
	for _, sh := range fed.Shards() {
		st := sh.F.TB.Stats()
		if st.Sites != 1 || st.Clusters != 1 {
			t.Fatalf("micro-shard %s/%s spans %d sites, %d clusters", sh.Site, sh.Cluster, st.Sites, st.Clusters)
		}
		if names := sh.F.TB.SiteNames(); len(names) != 1 || names[0] != sh.Site {
			t.Fatalf("micro-shard %s/%s testbed claims sites %v", sh.Site, sh.Cluster, names)
		}
		if prev, dup := seeds[sh.Seed]; dup {
			t.Fatalf("micro-shards %q and %s/%s derived the same seed %d", prev, sh.Site, sh.Cluster, sh.Seed)
		}
		seeds[sh.Seed] = sh.Site + "/" + sh.Cluster
		if sh.Seed != ShardSeed(1, sh.Site, sh.Cluster) {
			t.Fatalf("micro-shard %s/%s seed %d is not ShardSeed(1, site, cluster)", sh.Site, sh.Cluster, sh.Seed)
		}
		if st.Nodes != sh.Nodes {
			t.Fatalf("micro-shard %s/%s cost label %d, testbed has %d nodes", sh.Site, sh.Cluster, sh.Nodes, st.Nodes)
		}
	}
	// The micro-shard union covers the whole paper-scale testbed.
	var nodes, cores int
	for _, sh := range fed.Shards() {
		st := sh.F.TB.Stats()
		nodes += st.Nodes
		cores += st.Cores
	}
	if nodes != 894 || cores != 8490 {
		t.Fatalf("micro-shard union = %d nodes, %d cores; want 894, 8490", nodes, cores)
	}
	if fed.Shard("nancy") == nil || fed.Shard("atlantis") != nil {
		t.Fatal("Shard lookup broken")
	}
	// Shard returns the site's coordinator: its first cluster in spec order.
	if sh := fed.Shard("nancy"); sh.Cluster != "graphene" {
		t.Fatalf("nancy coordinator cluster = %q, want graphene", sh.Cluster)
	}
	if got := len(fed.SiteShards("nancy")); got != 7 {
		t.Fatalf("nancy has %d micro-shards, want 7", got)
	}
	if fed.SiteShards("atlantis") != nil {
		t.Fatal("SiteShards invented an unknown site")
	}
}

func TestShardSeedIsPure(t *testing.T) {
	if ShardSeed(42, "nancy", "graphene") != ShardSeed(42, "nancy", "graphene") {
		t.Fatal("ShardSeed not deterministic")
	}
	if ShardSeed(42, "nancy", "graphene") == ShardSeed(42, "lyon", "graphene") {
		t.Fatal("ShardSeed does not separate sites")
	}
	if ShardSeed(42, "nancy", "graphene") == ShardSeed(42, "nancy", "graoully") {
		t.Fatal("ShardSeed does not separate clusters")
	}
	if ShardSeed(42, "nancy", "graphene") == ShardSeed(43, "nancy", "graphene") {
		t.Fatal("ShardSeed does not separate campaign seeds")
	}
	// The site/cluster boundary is unambiguous: shifting bytes across it
	// must change the stream.
	if ShardSeed(42, "a", "b") == ShardSeed(42, "ab", "") {
		t.Fatal("ShardSeed aliases across the site/cluster boundary")
	}
}

// runFederated simulates a federated campaign at the given worker count
// (optionally under the legacy site-grouped schedule) and returns its
// outcome.
func runFederated(t *testing.T, workers int, siteGrouped bool) (Summary, []core.WeekCounts) {
	t.Helper()
	fed := New(Config{
		Seed:        77,
		Spec:        subSpec("luxembourg", "nantes", "lyon", "sophia"),
		Workers:     workers,
		SiteGrouped: siteGrouped,
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 10
			return cfg
		},
	})
	fed.Start()
	fed.Advance(2 * simclock.Week)
	if fed.Now() != 2*simclock.Week {
		t.Fatalf("federated clock = %v, want 2 weeks", fed.Now())
	}
	for _, sh := range fed.Shards() {
		if sh.F.Clock.Now() != 2*simclock.Week {
			t.Fatalf("shard %q clock = %v, out of lockstep", sh.Site, sh.F.Clock.Now())
		}
	}
	return fed.Summary(), fed.WeeklyReport()
}

// TestFederationSerialParallelDeterminism is the load-bearing property of
// the whole layer: stepping the micro-shards serially, across 4
// work-stealing workers, or under the legacy site-grouped schedule
// (one whole site per worker pull — the old per-site sharding) must
// produce bit-identical campaign summaries, per site and merged.
// CI also runs this under -race (make fed-check).
func TestFederationSerialParallelDeterminism(t *testing.T) {
	serial, serialWeekly := runFederated(t, 1, false)
	parallel, parallelWeekly := runFederated(t, 4, false)
	legacy, legacyWeekly := runFederated(t, 4, true)

	for _, alt := range []struct {
		name   string
		sum    Summary
		weekly []core.WeekCounts
	}{{"parallel", parallel, parallelWeekly}, {"site-grouped", legacy, legacyWeekly}} {
		if len(serial.Sites) != len(alt.sum.Sites) {
			t.Fatalf("site counts diverged: serial %d vs %s %d", len(serial.Sites), alt.name, len(alt.sum.Sites))
		}
		for i := range serial.Sites {
			if serial.Sites[i] != alt.sum.Sites[i] {
				t.Fatalf("site %s diverged between serial and %s stepping:\nserial: %+v\n%s: %+v",
					serial.Sites[i].Site, alt.name, serial.Sites[i].Summary, alt.name, alt.sum.Sites[i].Summary)
			}
		}
		if serial.Merged != alt.sum.Merged {
			t.Fatalf("merged summary diverged:\nserial: %+v\n%s: %+v", serial.Merged, alt.name, alt.sum.Merged)
		}
		if !reflect.DeepEqual(serialWeekly, alt.weekly) {
			t.Fatalf("merged weekly reports diverged:\nserial: %+v\n%s: %+v", serialWeekly, alt.name, alt.weekly)
		}
	}
	// Sanity: the campaign actually did something on every site.
	if serial.Merged.Builds == 0 {
		t.Fatal("federated campaign completed no builds")
	}
	for _, s := range serial.Sites {
		if s.Summary.Builds == 0 {
			t.Fatalf("site %s completed no builds", s.Site)
		}
	}
}

func TestMergeWeekly(t *testing.T) {
	a := []core.WeekCounts{{Week: 0, Success: 10, Failure: 2}, {Week: 2, Success: 5, Unstable: 1}}
	b := []core.WeekCounts{{Week: 0, Success: 3, Failure: 1}, {Week: 1, Success: 7}}
	got := MergeWeekly(a, b)
	want := []core.WeekCounts{
		{Week: 0, Success: 13, Failure: 3},
		{Week: 1, Success: 7},
		{Week: 2, Success: 5, Unstable: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeWeekly = %+v, want %+v", got, want)
	}
	if out := MergeWeekly(); len(out) != 0 {
		t.Fatalf("MergeWeekly() = %+v, want empty", out)
	}
}

func TestSpecSites(t *testing.T) {
	got := SpecSites(nil)
	want := []string{"grenoble", "lille", "luxembourg", "lyon", "nancy", "nantes", "rennes", "sophia"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SpecSites(nil) = %v, want %v", got, want)
	}
}
