package federation

import (
	"reflect"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simclock"
)

// chaosFed builds a small federation with a fast fault profile, suitable
// for disaster tests.
func chaosFed(workers int) *Federation {
	fed := New(Config{
		Seed:    99,
		Spec:    subSpec("luxembourg", "nantes", "lyon"),
		Workers: workers,
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 6
			return cfg
		},
	})
	fed.Start()
	return fed
}

func TestChaosOutageFreezesAndCatchesUp(t *testing.T) {
	fed := chaosFed(1)
	if err := fed.ScheduleChaos(faults.ScheduleEntry{
		Kind: faults.SiteOutage, Sites: []string{"lyon"}, At: simclock.Week, Duration: simclock.Week,
	}); err != nil {
		t.Fatalf("schedule: %v", err)
	}

	fed.Advance(simclock.Week)
	// The outage lands exactly at the new clock: active, lyon down.
	if fed.SiteAvailable("lyon") {
		t.Fatal("lyon should be down at 1w")
	}
	if !fed.SiteAvailable("nantes") {
		t.Fatal("nantes should be up")
	}
	if got := fed.DownSites(); !reflect.DeepEqual(got, []string{"lyon"}) {
		t.Fatalf("DownSites = %v", got)
	}
	if !fed.Degraded() {
		t.Fatal("federation should report degraded")
	}
	sum := fed.Summary()
	if !sum.Degraded || len(sum.DownSites) != 1 {
		t.Fatalf("summary not degraded: %+v", sum)
	}
	for _, s := range sum.Sites {
		if s.Site == "lyon" && !s.Down {
			t.Fatal("lyon SiteSummary should be marked Down")
		}
	}

	// The downed tick: lyon freezes at the barrier, the others step; the
	// heal lands exactly at 2w as the Advance returns.
	fed.Advance(simclock.Week)
	if got := fed.Shard("lyon").F.Clock.Now(); got != simclock.Week {
		t.Fatalf("lyon clock = %v, want frozen at 1w", got)
	}
	if got := fed.Shard("nantes").F.Clock.Now(); got != 2*simclock.Week {
		t.Fatalf("nantes clock = %v, want 2w", got)
	}

	// Healed at 2w: the next tick steps lyon with a catch-up tick (2w
	// total) and the lockstep resumes.
	fed.Advance(simclock.Week)
	if fed.Degraded() {
		t.Fatal("federation should have healed at 2w")
	}
	for _, sh := range fed.Shards() {
		if got := sh.F.Clock.Now(); got != 3*simclock.Week {
			t.Fatalf("shard %s clock = %v, want back in lockstep at 3w", sh.Site, got)
		}
	}
	sum = fed.Summary()
	if sum.Degraded || sum.DownSites != nil || sum.UnreachableSites != nil {
		t.Fatalf("healed summary still degraded: %+v", sum)
	}

	// The outage filed exactly one ticket per surviving site — on its
	// coordinator micro-shard (the site's first cluster), not once per
	// cluster — closed on heal; the downed site never heard of it.
	for _, site := range fed.Sites() {
		for i, sh := range fed.SiteShards(site) {
			b := sh.F.Bugs.BySignature("site-outage:lyon")
			if site == "lyon" || i > 0 {
				if b != nil {
					t.Fatalf("micro-shard %s/%s should not carry the outage ticket", sh.Site, sh.Cluster)
				}
				continue
			}
			if b == nil {
				t.Fatalf("coordinator %s/%s missing the outage ticket", sh.Site, sh.Cluster)
			}
			if b.State != bugs.Fixed {
				t.Fatalf("coordinator %s outage ticket state = %v, want fixed after heal", sh.Site, b.State)
			}
		}
	}
}

// TestChaosSiteFreezeIsAtomic is the micro-sharding chaos invariant: a
// site outage freezes every one of the site's micro-shards at the same
// barrier (none sneaks through a tick), and heal catch-up replays them
// back into lockstep deterministically — the same clocks and summaries
// whether the catch-up ran serially or work-stealing.
func TestChaosSiteFreezeIsAtomic(t *testing.T) {
	outcomes := make([]Summary, 0, 2)
	for _, workers := range []int{1, 4} {
		fed := chaosFed(workers)
		if err := fed.ScheduleChaos(faults.ScheduleEntry{
			Kind: faults.SiteOutage, Sites: []string{"lyon"}, At: simclock.Week, Duration: 2 * simclock.Week,
		}); err != nil {
			t.Fatalf("schedule: %v", err)
		}

		// Two downed ticks: every lyon micro-shard must freeze at exactly
		// 1w — atomically, as one site — while every other micro-shard
		// keeps stepping.
		fed.Advance(3 * simclock.Week)
		for _, sh := range fed.SiteShards("lyon") {
			if got := sh.F.Clock.Now(); got != simclock.Week {
				t.Fatalf("workers=%d: lyon/%s clock = %v, want frozen at 1w with its site", workers, sh.Cluster, got)
			}
		}
		for _, site := range []string{"luxembourg", "nantes"} {
			for _, sh := range fed.SiteShards(site) {
				if got := sh.F.Clock.Now(); got != 3*simclock.Week {
					t.Fatalf("workers=%d: %s/%s clock = %v, want 3w", workers, site, sh.Cluster, got)
				}
			}
		}

		// Heal lands at 3w; the next tick replays lyon's debt. All of the
		// site's micro-shards catch up in the same tick, back to lockstep.
		fed.Advance(simclock.Week)
		for _, sh := range fed.Shards() {
			if got := sh.F.Clock.Now(); got != 4*simclock.Week {
				t.Fatalf("workers=%d: %s/%s clock = %v, want lockstep at 4w", workers, sh.Site, sh.Cluster, got)
			}
		}
		outcomes = append(outcomes, fed.Summary())
	}
	if !reflect.DeepEqual(outcomes[0], outcomes[1]) {
		t.Fatalf("heal catch-up diverged between serial and work-stealing replay:\nserial:   %+v\nparallel: %+v",
			outcomes[0], outcomes[1])
	}
}

func TestChaosPartitionReachability(t *testing.T) {
	fed := chaosFed(1)
	fed.Advance(simclock.Week)
	ev, err := fed.InjectGrid(faults.WANPartition, []string{"lyon"}, 0, 0)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	// Partitioned sites keep serving and stepping; only merges exclude them.
	if !fed.SiteAvailable("lyon") {
		t.Fatal("partitioned site should stay available")
	}
	if got := fed.UnreachableSites(); !reflect.DeepEqual(got, []string{"lyon"}) {
		t.Fatalf("UnreachableSites = %v", got)
	}
	fed.Advance(simclock.Week)
	if got := fed.Shard("lyon").F.Clock.Now(); got != 2*simclock.Week {
		t.Fatalf("partitioned shard clock = %v, want 2w (still stepping)", got)
	}
	sum := fed.Summary()
	if !sum.Degraded {
		t.Fatal("summary should be degraded under partition")
	}
	var lyonBuilds, mergedBuilds, sumBuilds int
	for _, s := range sum.Sites {
		sumBuilds += s.Summary.Builds
		if s.Site == "lyon" {
			lyonBuilds = s.Summary.Builds
			if !s.Unreachable || s.Down {
				t.Fatalf("lyon flags = %+v", s)
			}
		}
	}
	mergedBuilds = sum.Merged.Builds
	if mergedBuilds != sumBuilds-lyonBuilds {
		t.Fatalf("merged builds %d should exclude lyon's %d of %d", mergedBuilds, lyonBuilds, sumBuilds)
	}

	// Heal: the groups reconcile — the merge covers every site again.
	if _, err := fed.HealGrid(ev.ID); err != nil {
		t.Fatalf("heal: %v", err)
	}
	sum = fed.Summary()
	if sum.Degraded || sum.Merged.Builds != sumBuilds {
		t.Fatalf("post-heal merge = %d, want reconciled %d", sum.Merged.Builds, sumBuilds)
	}
}

func TestChaosRejectsUnknownSites(t *testing.T) {
	fed := chaosFed(1)
	if err := fed.ScheduleChaos(faults.ScheduleEntry{Kind: faults.SiteOutage, Sites: []string{"atlantis"}}); err == nil {
		t.Fatal("unknown site should be rejected")
	}
	if _, err := fed.InjectGrid(faults.SiteOutage, []string{"atlantis"}, 0, 0); err == nil {
		t.Fatal("unknown site should be rejected")
	}
	if _, err := fed.HealGrid(12345); err == nil {
		t.Fatal("healing a non-event should fail")
	}
	if err := fed.StepSite("atlantis", simclock.Week); err == nil {
		t.Fatal("stepping an unknown site should fail")
	}
}

func TestChaosStepSiteRefusedWhileDown(t *testing.T) {
	fed := chaosFed(1)
	if _, err := fed.InjectGrid(faults.SiteOutage, []string{"lyon"}, 0, 0); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if err := fed.StepSite("lyon", simclock.Week); err == nil {
		t.Fatal("stepping a downed site should fail")
	}
	if err := fed.StepSite("nantes", simclock.Week); err != nil {
		t.Fatalf("stepping a healthy site: %v", err)
	}
	// The ahead shard is not re-stepped by the next federated tick.
	fed.Advance(simclock.Week)
	if got := fed.Shard("nantes").F.Clock.Now(); got != simclock.Week {
		t.Fatalf("nantes clock = %v, want 1w (ahead shard skips the tick)", got)
	}
	if got := fed.Shard("luxembourg").F.Clock.Now(); got != simclock.Week {
		t.Fatalf("luxembourg clock = %v, want 1w", got)
	}
}

// runChaosFederated simulates a disaster campaign — an outage, a rolling
// maintenance and a partition — at the given worker count.
func runChaosFederated(t *testing.T, workers int) (Summary, []core.WeekCounts) {
	t.Helper()
	fed := New(Config{
		Seed:    77,
		Spec:    subSpec("luxembourg", "nantes", "lyon", "sophia"),
		Workers: workers,
		Configure: func(site string, seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = 10
			return cfg
		},
	})
	fed.Start()
	if err := fed.ScheduleChaos(
		faults.ScheduleEntry{Kind: faults.SiteOutage, Sites: []string{"lyon"}, At: simclock.Week, Duration: simclock.Week},
		faults.ScheduleEntry{Kind: faults.RollingMaintenance, Sites: []string{"nantes", "sophia"}, At: 2 * simclock.Week, Duration: simclock.Week},
		faults.ScheduleEntry{Kind: faults.WANPartition, Sites: []string{"luxembourg"}, At: simclock.Week, Duration: 2 * simclock.Week},
	); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	fed.Advance(5 * simclock.Week)
	for _, sh := range fed.Shards() {
		if got := sh.F.Clock.Now(); got != 5*simclock.Week {
			t.Fatalf("shard %s clock = %v, want 5w after every event healed", sh.Site, got)
		}
	}
	return fed.Summary(), fed.WeeklyReport()
}

// TestChaosSerialParallelDeterminism is the disaster-mode extension of the
// federation's load-bearing property: with site-scale events injected,
// frozen barriers and catch-up ticks, serial and parallel advances must
// still be bit-identical. CI runs this under -race (make chaos-check).
func TestChaosSerialParallelDeterminism(t *testing.T) {
	serial, serialWeekly := runChaosFederated(t, 1)
	parallel, parallelWeekly := runChaosFederated(t, 4)

	for i := range serial.Sites {
		if serial.Sites[i] != parallel.Sites[i] {
			t.Fatalf("site %s diverged under chaos:\nserial:   %+v\nparallel: %+v",
				serial.Sites[i].Site, serial.Sites[i].Summary, parallel.Sites[i].Summary)
		}
	}
	if serial.Merged != parallel.Merged {
		t.Fatalf("merged summary diverged under chaos:\nserial:   %+v\nparallel: %+v", serial.Merged, parallel.Merged)
	}
	if !reflect.DeepEqual(serialWeekly, parallelWeekly) {
		t.Fatalf("weekly reports diverged under chaos")
	}
	if serial.Degraded {
		t.Fatal("every event should have healed by 5w")
	}
	if serial.Merged.Builds == 0 {
		t.Fatal("chaos campaign completed no builds")
	}
	// The disaster left its mark: grid tickets were filed on each
	// surviving site's coordinator shard.
	if serial.Merged.BugsFiled == 0 {
		t.Fatal("no bugs filed at all")
	}
}

// TestMergeWeeklyDegraded covers the degraded-merge path: reports of
// unequal length (a frozen shard stops reporting early) and missing
// reports (a partitioned shard drops out of the merge entirely).
func TestMergeWeeklyDegraded(t *testing.T) {
	full := []core.WeekCounts{
		{Week: 0, Success: 4, Failure: 1},
		{Week: 1, Success: 6},
		{Week: 2, Success: 5, Unstable: 2},
	}
	frozen := []core.WeekCounts{{Week: 0, Success: 3}}

	got := MergeWeekly(full, frozen)
	want := []core.WeekCounts{
		{Week: 0, Success: 7, Failure: 1},
		{Week: 1, Success: 6},
		{Week: 2, Success: 5, Unstable: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unequal-length merge = %+v, want %+v", got, want)
	}

	// A missing (nil) report merges as zero contribution, not a crash.
	if got := MergeWeekly(full, nil); !reflect.DeepEqual(got, full) {
		t.Fatalf("nil-report merge = %+v, want %+v", got, full)
	}
	if got := MergeWeekly(nil, nil); len(got) != 0 {
		t.Fatalf("all-nil merge = %+v, want empty", got)
	}

	// Sparse weeks (a shard dark in the middle) stay sparse in the merge.
	sparse := []core.WeekCounts{{Week: 0, Success: 1}, {Week: 3, Success: 2}}
	got = MergeWeekly(sparse)
	if len(got) != 2 || got[1].Week != 3 {
		t.Fatalf("sparse merge = %+v", got)
	}
}
