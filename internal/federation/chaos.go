package federation

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/simclock"
)

// This file is the federation's site-scale chaos surface: deterministic
// disaster schedules (ScheduleChaos) and live injection (InjectGrid /
// HealGrid, driven by the gateway's /chaos endpoints), plus the
// availability queries the gateway's degraded-mode routing is built on.
// All state lives behind fed.mu; events take effect at barrier boundaries,
// which is what keeps serial and parallel advances bit-identical through a
// disaster.

// SetStepGate installs a wrapper around every micro-shard step performed
// by Advance: gate(site, cluster, step) must call step exactly once. The
// gateway uses this to take the micro-shard's write lock around its
// barrier ticks so live reads stay coherent. Must be set before the first
// Advance and not changed afterwards.
func (fed *Federation) SetStepGate(gate func(site, cluster string, step func())) {
	fed.stepGate = gate
}

// SetGridListener installs a callback fired (outside fed.mu) after every
// InjectGrid, HealGrid and Advance — the calls that can change which sites
// are live or move the federated clock. The gateway uses it to pump the
// admission queue, so queued reservations against a site that just went
// down fail or re-route immediately. Must be set before the federation
// starts serving and not changed afterwards; the listener must not call
// back into Inject/Heal/Advance.
func (fed *Federation) SetGridListener(fn func()) {
	fed.gridListener = fn
}

// notifyGrid invokes the grid listener, if any. Callers must not hold
// fed.mu: the listener typically takes gateway and shard locks of its own.
func (fed *Federation) notifyGrid() {
	if fed.gridListener != nil {
		fed.gridListener()
	}
}

// ScheduleChaos appends entries to the deterministic disaster schedule.
// Each entry injects its event when the federated clock reaches At (and
// schedules the heal at At+Duration, where applicable). Unknown sites are
// rejected so a typo cannot silently schedule a no-op disaster.
func (fed *Federation) ScheduleChaos(entries ...faults.ScheduleEntry) error {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	for _, e := range entries {
		if err := fed.checkSitesLocked(e.Sites); err != nil {
			return err
		}
		if e.Kind == faults.RollingMaintenance && e.Duration <= 0 {
			return fmt.Errorf("federation: rolling maintenance needs a per-site window")
		}
	}
	for _, e := range entries {
		e.Sites = append([]string(nil), e.Sites...)
		fed.pending = append(fed.pending, e)
	}
	fed.applyDueLocked()
	return nil
}

// InjectGrid injects a grid event right now (at the federated clock). For
// RollingMaintenance, window is the per-site window (0 = one barrier tick).
// For the other kinds, duration > 0 schedules the heal that much later
// (0 = heal manually). Returns a value copy of the event.
func (fed *Federation) InjectGrid(kind faults.GridKind, sites []string, window, duration simclock.Time) (faults.GridEvent, error) {
	fed.mu.Lock()
	if err := fed.checkSitesLocked(sites); err != nil {
		fed.mu.Unlock()
		return faults.GridEvent{}, err
	}
	if kind == faults.RollingMaintenance && window <= 0 {
		window = fed.barrier
	}
	ev, err := fed.grid.Inject(kind, sites, fed.now, window)
	if err != nil {
		fed.mu.Unlock()
		return faults.GridEvent{}, err
	}
	if kind != faults.RollingMaintenance && duration > 0 {
		fed.pendingHeals = append(fed.pendingHeals, pendingHeal{id: ev.ID, at: fed.now + duration})
	}
	out := eventCopy(ev)
	fed.mu.Unlock()
	fed.notifyGrid()
	return out, nil
}

// HealGrid heals an active grid event right now, returning a value copy of
// the healed event.
func (fed *Federation) HealGrid(id int) (faults.GridEvent, error) {
	fed.mu.Lock()
	if err := fed.grid.Heal(id, fed.now); err != nil {
		fed.mu.Unlock()
		return faults.GridEvent{}, err
	}
	out := eventCopy(fed.grid.Get(id))
	fed.mu.Unlock()
	fed.notifyGrid()
	return out, nil
}

// ActiveGridEvents returns value copies of the active grid events, sorted
// by ID.
func (fed *Federation) ActiveGridEvents() []faults.GridEvent {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return eventCopies(fed.grid.Active())
}

// GridHistory returns value copies of every grid event ever injected, in
// injection order.
func (fed *Federation) GridHistory() []faults.GridEvent {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return eventCopies(fed.grid.History())
}

// SiteAvailable reports whether the named site is serving: false while an
// active outage or maintenance window has it down. Partitioned sites stay
// available (their site-scoped routes work; only merges exclude them).
// Unknown sites report false.
func (fed *Federation) SiteAvailable(site string) bool {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	if _, ok := fed.bySite[site]; !ok {
		return false
	}
	return !fed.grid.SiteDownAt(site, fed.now)
}

// DownSites returns the sites currently frozen by an active outage or
// maintenance window, in shard order.
func (fed *Federation) DownSites() []string {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return fed.downSitesLocked()
}

// UnreachableSites returns the sites currently isolated by a WAN partition
// (and not also down), in shard order.
func (fed *Federation) UnreachableSites() []string {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return fed.unreachableSitesLocked()
}

// Degraded reports whether any site is currently down or unreachable.
func (fed *Federation) Degraded() bool {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return len(fed.downSitesLocked())+len(fed.unreachableSitesLocked()) > 0
}

// StepSite advances one site's micro-shards by d without a barrier, on
// the caller's goroutine (Gateway.AdvanceSite). The site runs ahead of the
// federated clock — all of its micro-shards together, in cluster order, so
// they stay in lockstep with each other — and the next Advance lets the
// clock catch up instead of re-stepping them. Refused while the site is
// down.
func (fed *Federation) StepSite(site string, d simclock.Time) error {
	fed.mu.Lock()
	shards, ok := fed.bySite[site]
	if !ok {
		fed.mu.Unlock()
		return fmt.Errorf("federation: unknown site %q", site)
	}
	if fed.grid.SiteDownAt(site, fed.now) {
		fed.mu.Unlock()
		return fmt.Errorf("federation: site %q is down", site)
	}
	fed.behind[fed.siteIdx[site]] -= d
	fed.mu.Unlock()
	// Step outside fed.mu: the caller (gateway) already serializes these
	// shards behind their own write locks, and other sites are unaffected.
	gate := fed.stepGate
	if gate == nil {
		gate = func(_, _ string, step func()) { step() }
	}
	for _, sh := range shards {
		gate(sh.Site, sh.Cluster, func() { sh.F.RunFor(d) })
	}
	return nil
}

// downSitesLocked returns the down sites in site order. Caller holds
// fed.mu.
func (fed *Federation) downSitesLocked() []string {
	var out []string
	for _, site := range fed.sites {
		if fed.grid.SiteDownAt(site, fed.now) {
			out = append(out, site)
		}
	}
	return out
}

// unreachableSitesLocked returns the partition-isolated (but not down)
// sites in site order. Caller holds fed.mu.
func (fed *Federation) unreachableSitesLocked() []string {
	iso := fed.grid.IsolatedAt(fed.now)
	var out []string
	for _, site := range fed.sites {
		if iso[site] && !fed.grid.SiteDownAt(site, fed.now) {
			out = append(out, site)
		}
	}
	return out
}

// checkSitesLocked validates that every named site is a shard.
func (fed *Federation) checkSitesLocked(sites []string) error {
	if len(sites) == 0 {
		return fmt.Errorf("federation: grid event needs at least one site")
	}
	for _, s := range sites {
		if _, ok := fed.bySite[s]; !ok {
			return fmt.Errorf("federation: unknown site %q", s)
		}
	}
	return nil
}

// eventCopy returns a detached value copy of a grid event.
func eventCopy(e *faults.GridEvent) faults.GridEvent {
	out := *e
	out.Sites = append([]string(nil), e.Sites...)
	return out
}

func eventCopies(events []*faults.GridEvent) []faults.GridEvent {
	out := make([]faults.GridEvent, len(events))
	for i, e := range events {
		out[i] = eventCopy(e)
	}
	return out
}
