// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON report: benchmark name → iterations,
// ns/op, B/op, allocs/op, plus every custom metric the benchmark reported
// with b.ReportMetric (the reproduced paper numbers). `make bench` uses it
// to write BENCH_results.json, so performance regressions show up as diffs
// in a tracked artefact instead of scrollback.
//
// With -compare it additionally gates against a baseline file: any tracked
// benchmark whose ns_per_op or allocs_per_op regressed by more than
// -max-regress exits non-zero — `make bench-check` runs this in CI so a
// perf regression fails the build.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run=NONE . | benchjson -o BENCH_results.json
//	go test -bench=. -benchmem -benchtime=1x -run=NONE . | \
//	    benchjson -compare BENCH_results.json -max-regress 20% -track BenchmarkE2_,BenchmarkE9_
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the parsed record of one benchmark.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// cpuSuffix strips the trailing GOMAXPROCS marker ("BenchmarkFoo-8").
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to gate regressions against")
	maxRegress := flag.String("max-regress", "20%", "maximum allowed ns_per_op / allocs_per_op regression vs the baseline")
	track := flag.String("track", "", "comma-separated benchmark name prefixes to gate (default: every benchmark present in both)")
	trackAllocs := flag.String("track-allocs", "", "benchmark name prefixes gated on allocs_per_op only (wall-clock-dominated benchmarks whose ns/op is not reproducible)")
	nsFloor := flag.Duration("ns-floor", 0, "skip ns_per_op gating for benchmarks whose baseline is below this duration (single-iteration sub-floor samples are scheduling noise); allocs_per_op stays gated")
	flag.Parse()

	results := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass the human-readable output through on stderr, so the JSON
		// stays parseable when it goes to stdout (no -o).
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a "Benchmark..." line that is not a result row
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		r := &Result{Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.Metrics["mb_per_s"] = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	switch {
	case *out != "":
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	case *compare == "":
		os.Stdout.Write(data)
	}

	if *compare != "" {
		if err := compareBaseline(results, *compare, *maxRegress, *track, *trackAllocs, float64(*nsFloor)); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// compareBaseline gates the fresh results against a baseline file: any
// tracked benchmark whose ns_per_op or allocs_per_op grew by more than the
// allowed fraction fails. Improvements (and new benchmarks absent from the
// baseline) pass. allocs_per_op is deterministic; ns_per_op is wall-clock,
// so the gate assumes baseline and run happen on comparable hardware (CI
// regenerates both on the same runner class). Benchmarks matching
// trackAllocs gate allocs_per_op only — their ns/op is dominated by real
// concurrent wall-clock work (load generation) and is not reproducible
// even on one machine. Benchmarks whose baseline ns_per_op is below
// nsFloor also skip the ns gate: at -benchtime=1x they are a single
// sub-floor sample, and one scheduler preemption swings them far past any
// sane regression threshold. Their allocs_per_op stays gated.
func compareBaseline(results map[string]*Result, path, maxRegress, track, trackAllocs string, nsFloor float64) error {
	frac, err := parsePercent(maxRegress)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	baseline := map[string]*Result{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	splitPrefixes := func(list string) []string {
		var out []string
		for _, p := range strings.Split(list, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	matches := func(name string, prefixes []string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	prefixes := splitPrefixes(track)
	allocPrefixes := splitPrefixes(trackAllocs)
	tracked := func(name string) bool {
		if len(prefixes) == 0 && len(allocPrefixes) == 0 {
			return true
		}
		return matches(name, prefixes) || matches(name, allocPrefixes)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	checked := 0
	for _, name := range names {
		if !tracked(name) {
			continue
		}
		cur, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked benchmark missing from this run", name))
			continue
		}
		checked++
		old := baseline[name]
		gated := []struct {
			what     string
			old, cur float64
		}{
			{"ns_per_op", old.NsPerOp, cur.NsPerOp},
			{"allocs_per_op", old.AllocsPerOp, cur.AllocsPerOp},
		}
		if matches(name, allocPrefixes) || old.NsPerOp < nsFloor {
			gated = gated[1:]
		}
		for _, m := range gated {
			if m.old <= 0 {
				continue
			}
			if m.cur > m.old*(1+frac) {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.1f%% (%.0f → %.0f, limit %.0f%%)",
					name, m.what, 100*(m.cur/m.old-1), m.old, m.cur, 100*frac))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d tracked benchmarks within %.0f%% of %s\n", checked, 100*frac, path)
	return nil
}

// parsePercent accepts "20%", "20" or "0.2".
func parsePercent(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q", s)
	}
	if pct || v > 1 {
		v /= 100
	}
	return v, nil
}
