// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON report: benchmark name → iterations,
// ns/op, B/op, allocs/op, plus every custom metric the benchmark reported
// with b.ReportMetric (the reproduced paper numbers). `make bench` uses it
// to write BENCH_results.json, so performance regressions show up as diffs
// in a tracked artefact instead of scrollback.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run=NONE . | benchjson -o BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is the parsed record of one benchmark.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// cpuSuffix strips the trailing GOMAXPROCS marker ("BenchmarkFoo-8").
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass the human-readable output through on stderr, so the JSON
		// stays parseable when it goes to stdout (no -o).
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a "Benchmark..." line that is not a result row
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		r := &Result{Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.Metrics["mb_per_s"] = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
