// Command g5kvet is the repository's static-analysis driver: a
// multichecker over the internal/lint suite that enforces the simulator's
// determinism and concurrency invariants at merge time instead of
// debugging time. It loads the named packages (default ./...) with full
// type information and runs every analyzer — walltime, globalrand,
// maporder, atomicfield, baregoroutine — printing findings in the
// familiar path:line:col form and exiting nonzero when any survive their
// //g5k:allow suppressions.
//
// Usage:
//
//	g5kvet [-list] [-analyzers a,b,...] [packages]
//
// Run it from the module root; `make lint` does.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: g5kvet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Static analysis of the simulator's determinism and concurrency invariants.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "g5kvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "g5kvet: %v\n", err)
		os.Exit(2)
	}

	diags := lint.RunAll(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "g5kvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
