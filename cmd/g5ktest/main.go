// Command g5ktest runs the testbed testing framework for a configurable
// number of simulated weeks and reports the campaign outcome: weekly
// success rates, bug statistics, scheduler decisions and the final status
// grid.
//
// With -seeds N it instead runs an N-seed campaign fleet (core.RunFleet):
// N independently seeded campaigns simulated across -parallel real
// goroutines, reporting the trend and bug statistics as mean ± spread —
// the Monte-Carlo view of the paper's longitudinal result.
//
// With -reliability it runs the same fleet sweep but reports it as the
// grid reliability trend: per-week success-rate confidence bands
// (mean ± std across seeds), printed through the one shared renderer
// (internal/intel) — byte-identical to what a client renders from the
// gateway's GET /reliability/trend body.
//
// With -federated it runs ONE campaign split into per-site shards
// (internal/federation): every site gets its own OAR, monitor, CI, fault
// and operator processes on an independent RNG stream, shards step in
// lockstep weekly barriers across -parallel goroutines, and the report
// shows each site's outcome plus the cross-site merge. Serial and
// parallel stepping produce bit-identical results by construction.
//
// Every mode accepts -scale k to run on testbed.Scaled(k) — k replicas of
// the paper grid (federated mode then carves k×32 per-cluster
// micro-shards; k=16 is the E21 benchmark's scale).
//
// Usage:
//
//	g5ktest [-weeks N] [-seed S] [-faults N] [-scale K] [-quiet]
//	g5ktest -seeds N [-parallel P] [-weeks N] [-seed BASE] [-faults N] [-scale K]
//	g5ktest -reliability -seeds N [-parallel P] [-weeks N] [-seed BASE] [-scale K]
//	g5ktest -federated [-parallel P] [-weeks N] [-seed S] [-faults N] [-scale K]
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/intel"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/testbed"
)

func main() {
	weeks := flag.Int("weeks", 8, "simulated weeks to run")
	seed := flag.Int64("seed", 42, "simulation seed (fleet mode: first seed of the range)")
	initialFaults := flag.Int("faults", 25, "fault backlog at campaign start")
	quiet := flag.Bool("quiet", false, "only print the final summary")
	seeds := flag.Int("seeds", 1, "run a fleet of N independently seeded campaigns")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "campaigns (fleet mode) or site shards (federated mode) simulated concurrently")
	federated := flag.Bool("federated", false, "run one campaign as per-site shards (internal/federation)")
	reliability := flag.Bool("reliability", false, "report the -seeds fleet as the grid reliability trend (confidence bands)")
	scale := flag.Int("scale", 1, "run on testbed.Scaled(k): k replicas of the paper grid")
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "g5ktest: -scale must be ≥ 1")
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.InitialFaults = *initialFaults
	if *scale > 1 {
		cfg.Spec = testbed.ScaledSpec(*scale)
	}

	if *reliability {
		runReliability(*seed, *seeds, *parallel, *weeks, *initialFaults, *scale)
		return
	}
	if *federated {
		runFederated(*seed, *parallel, *weeks, *initialFaults, *scale)
		return
	}
	if *seeds > 1 {
		runFleet(*seed, *seeds, *parallel, *weeks, *initialFaults, *scale)
		return
	}

	f := core.New(cfg)
	f.Start()

	fmt.Printf("testbed: %s\n", f.TB.Stats())
	for w := 1; w <= *weeks; w++ {
		f.RunFor(simclock.Week)
		if !*quiet {
			st := f.Bugs.Stats()
			fmt.Printf("week %2d: %4d builds total, %3d active faults, %s\n",
				w, f.CI.TotalBuilds(), f.Faults.ActiveCount(), st)
		}
	}

	fmt.Println("\nweekly success rate (verdicts only; unstable = could not run):")
	for _, wc := range f.WeeklyReport() {
		fmt.Printf("  week %2d: %4d runs, %5.1f%% ok, %3d unstable\n",
			wc.Week+1, wc.Total(), 100*wc.Rate(), wc.Unstable)
	}

	fmt.Println("\nbug tracker:")
	fmt.Print(indent(f.Bugs.Report()))

	fmt.Println("scheduler decisions:")
	for _, ac := range f.Sched.DecisionCountsSorted() {
		fmt.Printf("  %-24s %d\n", ac.Action, ac.Count)
	}

	// Serve the CI REST API on a loopback listener and render the status
	// grid through it, the way the real status page works.
	ts := httptest.NewServer(f.CI.Handler())
	defer ts.Close()
	grid, err := status.NewClient(ts.URL).BuildGrid()
	if err != nil {
		fmt.Fprintf(os.Stderr, "status page: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nstatus grid:")
	grid.RenderText(os.Stdout)

	fmt.Printf("\n%s\n", f.Summary())
}

func indent(s string) string {
	return "  " + s
}

// runFleet is the -seeds mode: a multi-seed campaign sweep with aggregate
// reporting.
func runFleet(base int64, n, parallel, weeks, initialFaults, scale int) {
	fmt.Printf("fleet: %d campaigns (seeds %d..%d), %d weeks each, %d in parallel\n\n",
		n, base, base+int64(n)-1, weeks, parallel)
	res := core.RunFleet(core.FleetConfig{
		Seeds:    core.SeedRange(base, n),
		Parallel: parallel,
		Duration: simclock.Time(weeks) * simclock.Week,
		Configure: func(seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.InitialFaults = initialFaults
			if scale > 1 {
				cfg.Spec = testbed.ScaledSpec(scale)
			}
			return cfg
		},
	})

	fmt.Println("per-seed campaigns:")
	for i := range res.Campaigns {
		c := &res.Campaigns[i]
		fmt.Printf("  seed %3d: %s\n", c.Seed, c.Summary)
	}

	fmt.Println("\nweekly success rate across seeds (mean ± std):")
	for _, w := range res.Weekly {
		fmt.Printf("  week %2d: %5.1f%% ± %4.1f  (min %5.1f%%, max %5.1f%%, %d seeds)\n",
			w.Week+1, 100*w.Rate.Mean, 100*w.Rate.Std, 100*w.Rate.Min, 100*w.Rate.Max, w.Rate.N)
	}

	fmt.Println("\naggregates:")
	fmt.Printf("  first week ok  %s\n", pct(res.FirstWeek))
	fmt.Printf("  final weeks ok %s\n", pct(res.FinalWeeks))
	fmt.Printf("  bugs filed     %s\n", res.BugsFiled)
	fmt.Printf("  bugs fixed     %s\n", res.BugsFixed)
	fmt.Printf("  bugs open      %s\n", res.BugsOpen)
}

// runReliability is the -reliability mode: the same N-seed sweep as
// -seeds, folded into the grid reliability trend and printed through the
// shared renderer — so this output and a render of the gateway's
// /reliability/trend body are byte-for-byte the same report.
func runReliability(base int64, n, parallel, weeks, initialFaults, scale int) {
	res := core.RunFleet(core.FleetConfig{
		Seeds:    core.SeedRange(base, n),
		Parallel: parallel,
		Duration: simclock.Time(weeks) * simclock.Week,
		Configure: func(seed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.InitialFaults = initialFaults
			if scale > 1 {
				cfg.Spec = testbed.ScaledSpec(scale)
			}
			return cfg
		},
	})
	intel.TrendFromFleet(res, base, weeks).RenderText(os.Stdout)
}

// runFederated is the -federated mode: one campaign as per-cluster
// micro-shards grouped under their sites.
func runFederated(seed int64, parallel, weeks, initialFaults, scale int) {
	fed := federation.New(federation.Config{
		Seed:    seed,
		Workers: parallel,
		Spec:    testbed.ScaledSpec(scale),
		Configure: func(site string, shardSeed int64) core.Config {
			cfg := core.DefaultConfig()
			cfg.InitialFaults = initialFaults
			return cfg
		},
	})
	fmt.Printf("federated campaign: %d micro-shards across %d sites, %d weeks, %d shard workers, seed %d\n\n",
		len(fed.Shards()), len(fed.Summary().Sites), weeks, parallel, seed)
	fed.Start()
	for w := 1; w <= weeks; w++ {
		fed.Advance(simclock.Week)
	}

	sum := fed.Summary()
	fmt.Println("per-site campaigns:")
	for _, s := range sum.Sites {
		fmt.Printf("  %-12s %s\n", s.Site, s.Summary)
	}

	fmt.Println("\nfederated weekly success rate:")
	for _, wc := range fed.WeeklyReport() {
		fmt.Printf("  week %2d: %4d runs, %5.1f%% ok, %3d unstable\n",
			wc.Week+1, wc.Total(), 100*wc.Rate(), wc.Unstable)
	}

	fmt.Printf("\n%s\n", sum)
}

// pct renders a rate aggregate as percentages.
func pct(a core.Aggregate) string {
	return fmt.Sprintf("%.1f%% ± %.1f (min %.1f%%, max %.1f%%, n=%d)",
		100*a.Mean, 100*a.Std, 100*a.Min, 100*a.Max, a.N)
}
