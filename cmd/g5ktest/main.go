// Command g5ktest runs the testbed testing framework for a configurable
// number of simulated weeks and reports the campaign outcome: weekly
// success rates, bug statistics, scheduler decisions and the final status
// grid.
//
// Usage:
//
//	g5ktest [-weeks N] [-seed S] [-faults N] [-quiet]
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/status"
)

func main() {
	weeks := flag.Int("weeks", 8, "simulated weeks to run")
	seed := flag.Int64("seed", 42, "simulation seed")
	initialFaults := flag.Int("faults", 25, "fault backlog at campaign start")
	quiet := flag.Bool("quiet", false, "only print the final summary")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.InitialFaults = *initialFaults

	f := core.New(cfg)
	f.Start()

	fmt.Printf("testbed: %s\n", f.TB.Stats())
	for w := 1; w <= *weeks; w++ {
		f.RunFor(simclock.Week)
		if !*quiet {
			st := f.Bugs.Stats()
			fmt.Printf("week %2d: %4d builds total, %3d active faults, %s\n",
				w, f.CI.TotalBuilds(), f.Faults.ActiveCount(), st)
		}
	}

	fmt.Println("\nweekly success rate (verdicts only; unstable = could not run):")
	for _, wc := range f.WeeklyReport() {
		fmt.Printf("  week %2d: %4d runs, %5.1f%% ok, %3d unstable\n",
			wc.Week+1, wc.Total(), 100*wc.Rate(), wc.Unstable)
	}

	fmt.Println("\nbug tracker:")
	fmt.Print(indent(f.Bugs.Report()))

	fmt.Println("scheduler decisions:")
	counts := f.Sched.DecisionCounts()
	actions := make([]string, 0, len(counts))
	for action := range counts {
		actions = append(actions, string(action))
	}
	sort.Strings(actions)
	for _, action := range actions {
		fmt.Printf("  %-24s %d\n", action, counts[sched.Action(action)])
	}

	// Serve the CI REST API on a loopback listener and render the status
	// grid through it, the way the real status page works.
	ts := httptest.NewServer(f.CI.Handler())
	defer ts.Close()
	grid, err := status.NewClient(ts.URL).BuildGrid()
	if err != nil {
		fmt.Fprintf(os.Stderr, "status page: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nstatus grid:")
	grid.RenderText(os.Stdout)

	fmt.Printf("\n%s\n", f.Summary())
}

func indent(s string) string {
	return "  " + s
}
