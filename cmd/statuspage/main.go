// Command statuspage runs a short testing campaign and serves the external
// status page over HTTP: the per-test × per-cluster grid (HTML), the
// transposed per-target report, and the raw CI REST API it is built from.
//
// Usage:
//
//	statuspage [-addr :8080] [-weeks 2] [-seed S]
//
// Endpoints:
//
//	/            status grid (HTML)
//	/target/X    all tests for cluster or site X (text)
//	/trend       historical success rate (text)
//	/ci/...      the underlying CI REST API (Jenkins-style JSON)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/status"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	weeks := flag.Int("weeks", 2, "simulated weeks of campaign to run first")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	f := core.New(cfg)
	f.Start()
	log.Printf("running %d simulated weeks of testing on %s...", *weeks, f.TB.Stats())
	f.RunFor(simclock.Time(*weeks) * simclock.Week)
	log.Printf("campaign done: %s", f.Summary())

	// The page consumes the CI REST API through the exact HTTP client code
	// path the paper's external status page uses, but dispatched in
	// process: the same handler is mounted below under /ci/, so there is
	// no second listener and no loopback hop.
	ciHandler := f.CI.Handler()
	client := status.NewLocalClient(ciHandler)

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		grid, err := client.BuildGrid()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		grid.RenderHTML(w) //nolint:errcheck
	})
	mux.HandleFunc("/target/", func(w http.ResponseWriter, r *http.Request) {
		target := strings.TrimPrefix(r.URL.Path, "/target/")
		grid, err := client.BuildGrid()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		rep := grid.ReportFor(target)
		if len(rep.Rows) == 0 {
			http.NotFound(w, r)
			return
		}
		for _, row := range rep.Rows {
			fmt.Fprintf(w, "%-16s %-10s (build #%d)\n", row.Family, row.Status.Result, row.Status.Build)
		}
	})
	mux.HandleFunc("/trend", func(w http.ResponseWriter, r *http.Request) {
		builds, err := client.AllBuilds()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		status.RenderTrend(w, status.Trend(builds, float64(simclock.Day/simclock.Second)))
	})
	mux.Handle("/ci/", http.StripPrefix("/ci", ciHandler))

	log.Printf("status page on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
