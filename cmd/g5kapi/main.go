// Command g5kapi serves a live campaign through the unified testbed API
// gateway (internal/gateway), or load-tests it in process
// (internal/loadgen).
//
// Serving mode runs a short campaign first, then exposes every subsystem
// over one HTTP front door:
//
//	g5kapi [-addr :8080] [-weeks 2] [-seed 42] [-live] [-step 10m]
//
// With -live the campaign keeps advancing: every wall-clock second the
// simulation steps by -step while request handlers are held out, so the
// served state (resources, bugs, grid, inventory versions) evolves under
// the clients' feet exactly like a production testbed.
//
// Load-generation mode drives the gateway without a listener and prints
// throughput plus latency percentiles, overall and per scenario:
//
//	g5kapi -loadgen [-workers 4] [-requests 20000] [-mix default|scrape|submit]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/inproc"
	"repro/internal/loadgen"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (serving mode)")
	weeks := flag.Int("weeks", 2, "simulated weeks of campaign to run before serving")
	seed := flag.Int64("seed", 42, "simulation seed")
	live := flag.Bool("live", false, "keep advancing the campaign while serving")
	step := flag.Duration("step", 10*time.Minute, "simulated time advanced per wall second in -live mode")
	runLoad := flag.Bool("loadgen", false, "run the load generator against an in-process gateway and exit")
	workers := flag.Int("workers", 4, "loadgen: concurrent client workers")
	requests := flag.Int("requests", 20000, "loadgen: total scenario iterations")
	mixName := flag.String("mix", "default", "loadgen: scenario mix (default|scrape|submit)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	f := core.New(cfg)
	f.Start()
	log.Printf("running %d simulated weeks of testing on %s...", *weeks, f.TB.Stats())
	f.RunFor(simclock.Time(*weeks) * simclock.Week)
	log.Printf("campaign done: %s", f.Summary())

	gw := gateway.ForFramework(f)

	if *runLoad {
		if err := loadTest(gw, f.TB, *workers, *requests, *mixName, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "g5kapi: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *live {
		simStep := simclock.Time(*step)
		go func() {
			for range time.Tick(time.Second) {
				gw.Advance(simStep)
			}
		}()
		log.Printf("live mode: +%v of simulated time per wall second", *step)
	}
	log.Printf("testbed API gateway on %s (try /, /oar/resources, /ref/inventory, /metrics)", *addr)
	log.Fatal(http.ListenAndServe(*addr, gw))
}

// loadTest drives the gateway through the in-process transport — no
// listener, no socket stack, just the service code under concurrency.
func loadTest(gw *gateway.Gateway, tb *testbed.Testbed, workers, requests int, mixName string, seed int64) error {
	clusters := make([]string, 0, 8)
	for _, cl := range tb.Clusters() {
		clusters = append(clusters, cl.Name)
		if len(clusters) == 8 {
			break
		}
	}
	var mix []loadgen.Scenario
	switch mixName {
	case "default":
		mix = loadgen.DefaultMix(clusters)
	case "scrape":
		mix = loadgen.ScrapeOnlyMix(clusters)
	case "submit":
		mix = []loadgen.Scenario{loadgen.SubmitHeavy(clusters)}
	default:
		return fmt.Errorf("unknown -mix %q (default|scrape|submit)", mixName)
	}

	fmt.Printf("load-generating %d iterations of %q on %d workers...\n", requests, mixName, workers)
	rep, err := loadgen.Run(loadgen.Config{
		Workers:  workers,
		Requests: requests,
		Mix:      mix,
		Seed:     seed,
		NewClient: func(int) (*http.Client, string) {
			return inproc.Client(gw), "http://gateway.local"
		},
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(rep.String())

	fmt.Println("\ngateway metrics:")
	m := gw.Metrics()
	fmt.Printf("  %-18s %8d requests, %d errors\n", "total", m.Requests, m.Errors)
	for _, ep := range []string{"/ref/inventory", "/ref/diff", "/oar/resources", "/oar/jobs", "/oar/submit", "/status/grid", "/status/trend", "/bugs", "/ci/", "/metrics"} {
		em, ok := m.Endpoints[ep]
		if !ok || em.Requests == 0 {
			continue
		}
		fmt.Printf("  %-18s %8d requests, %5d × 304, avg %7.1fµs, max %.0fµs\n",
			ep, em.Requests, em.NotModified, em.AvgMicros, em.MaxMicros)
	}
	return nil
}
