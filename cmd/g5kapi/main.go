// Command g5kapi serves a live campaign through the unified testbed API
// gateway (internal/gateway), or load-tests it in process
// (internal/loadgen).
//
// Serving mode runs a short campaign first, then exposes every subsystem
// over one HTTP front door:
//
//	g5kapi [-addr :8080] [-weeks 2] [-seed 42] [-live] [-step 10m] [-shards] [-scale k]
//
// With -reliability N an N-seed fleet sweep runs before serving and its
// confidence-band trend is installed on GET /reliability/trend.
//
// With -shards the campaign is federated (internal/federation): one
// micro-shard per cluster behind per-shard gateway locks, grouped under
// its site's label, with site-scoped routes under /sites/{site}/... and
// scatter-gather merges on the classic paths. A -live advance then
// work-steals the micro-shards across the barrier workers, each stepping
// under its own write lock, so reads against one site never wait for
// another site's progress.
//
// With -scale k any mode runs on testbed.Scaled(k) — k replicas of the
// paper grid (k=16 is the E21 benchmark's 512-micro-shard scale).
//
// With -live the campaign keeps advancing: every wall-clock second the
// simulation steps by -step while request handlers are held out, so the
// served state (resources, bugs, grid, inventory versions) evolves under
// the clients' feet exactly like a production testbed.
//
// Load-generation mode drives the gateway without a listener and prints
// throughput plus latency percentiles, overall and per scenario:
//
//	g5kapi -loadgen [-workers 4] [-requests 20000] [-mix default|scrape|submit]
//	g5kapi -loadgen -shards    # site-pinned federated mix
//	g5kapi -loadgen -rate 500  # open-loop: fixed arrival rate, CO-safe latency
//
// With -rate the generator switches from closed-loop (next request waits
// for the previous) to open-loop: arrivals follow a seeded jittered
// schedule at the given rate regardless of how fast the service answers,
// and latency is measured from the scheduled arrival instant — so queueing
// delay past the capacity knee is charged to the report instead of being
// hidden by coordinated omission. The printout adds offered vs achieved
// rate; a gap between them locates the knee.
//
// With -shards, -chaos arms a deterministic disaster schedule against the
// federated campaign (internal/faults.ParseSchedule syntax):
//
//	g5kapi -shards -chaos "outage:lyon@1w+1w,partition:nantes@2w+1w"
//	g5kapi -shards -chaos "outage:lyon@1w" -loadgen   # disaster mix + availability report
//
// Scheduled events fire as the pre-serve campaign advances: downed sites
// freeze at the federation barrier (their routes answer 503 with
// Retry-After), partitioned sites drop out of merged views, and heals
// replay the missed time deterministically. In -loadgen mode the scenario
// mix switches to the disaster mix and an availability report (overall and
// per site, 503-by-design split from real errors) is printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/inproc"
	"repro/internal/intel"
	"repro/internal/loadgen"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (serving mode)")
	weeks := flag.Int("weeks", 2, "simulated weeks of campaign to run before serving")
	seed := flag.Int64("seed", 42, "simulation seed")
	live := flag.Bool("live", false, "keep advancing the campaign while serving")
	step := flag.Duration("step", 10*time.Minute, "simulated time advanced per wall second in -live mode")
	shards := flag.Bool("shards", false, "federate the campaign: per-cluster micro-shards behind per-shard gateway locks")
	scale := flag.Int("scale", 1, "run on testbed.Scaled(k): k replicas of the paper grid")
	fedWorkers := flag.Int("shard-workers", 0, "shards advanced concurrently (0 = GOMAXPROCS; -shards only)")
	chaos := flag.String("chaos", "", `disaster schedule, e.g. "outage:lyon@1w+1w,maintenance:nancy+rennes@2w+1w" (-shards only)`)
	reliability := flag.Int("reliability", 0, "also run an N-seed fleet sweep and serve it on /reliability/trend (0 = skip)")
	runLoad := flag.Bool("loadgen", false, "run the load generator against an in-process gateway and exit")
	workers := flag.Int("workers", 4, "loadgen: concurrent client workers")
	requests := flag.Int("requests", 20000, "loadgen: total scenario iterations")
	rate := flag.Float64("rate", 0, "loadgen: open-loop arrival rate in req/s (0 = closed-loop)")
	mixName := flag.String("mix", "default", "loadgen: scenario mix (default|scrape|submit; ignored with -shards)")
	flag.Parse()

	var gw *gateway.Gateway
	var mix []loadgen.Scenario

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "g5kapi: -scale must be ≥ 1")
		os.Exit(1)
	}

	if *shards {
		fed := federation.New(federation.Config{
			Seed: *seed, Workers: *fedWorkers, Spec: testbed.ScaledSpec(*scale),
		})
		fed.Start()
		if *chaos != "" {
			entries, err := faults.ParseSchedule(*chaos)
			if err != nil {
				fmt.Fprintf(os.Stderr, "g5kapi: -chaos: %v\n", err)
				os.Exit(1)
			}
			if err := fed.ScheduleChaos(entries...); err != nil {
				fmt.Fprintf(os.Stderr, "g5kapi: -chaos: %v\n", err)
				os.Exit(1)
			}
			log.Printf("chaos schedule armed: %d grid event(s)", len(entries))
		}
		// The gateway is assembled before the pre-serve advance so barrier
		// ticks run under the per-shard gateway locks from the first week.
		gw = gateway.ForFederation(fed)
		log.Printf("running %d simulated weeks on %d federated micro-shards (%d sites)...",
			*weeks, len(fed.Shards()), len(fed.Summary().Sites))
		gw.Advance(simclock.Time(*weeks) * simclock.Week)
		sum := fed.Summary()
		for _, s := range sum.Sites {
			marker := ""
			if s.Down {
				marker = "  [down]"
			} else if s.Unreachable {
				marker = "  [unreachable]"
			}
			log.Printf("  site %-12s %s%s", s.Site, s.Summary, marker)
		}
		log.Printf("campaign done: %s", sum)
		if *runLoad {
			mix = loadgen.FederatedMix(federatedTargets(fed))
			*mixName = "federated"
			if *chaos != "" {
				mix = loadgen.DisasterMix(federatedTargets(fed))
				*mixName = "disaster"
			}
		}
	} else {
		if *chaos != "" {
			fmt.Fprintln(os.Stderr, "g5kapi: -chaos requires -shards")
			os.Exit(1)
		}
		cfg := core.DefaultConfig()
		cfg.Seed = *seed
		if *scale > 1 {
			cfg.Spec = testbed.ScaledSpec(*scale)
		}
		f := core.New(cfg)
		f.Start()
		log.Printf("running %d simulated weeks of testing on %s...", *weeks, f.TB.Stats())
		f.RunFor(simclock.Time(*weeks) * simclock.Week)
		log.Printf("campaign done: %s", f.Summary())
		gw = gateway.ForFramework(f)
		if *runLoad {
			var err error
			if mix, err = monolithicMix(*mixName, f.TB); err != nil {
				fmt.Fprintf(os.Stderr, "g5kapi: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *reliability > 0 {
		// The sweep is expensive (N whole campaigns), so it runs once here
		// and the gateway serves the stored, versioned result.
		log.Printf("reliability sweep: %d seeds × %d weeks...", *reliability, *weeks)
		res := core.RunFleet(core.FleetConfig{
			Seeds:    core.SeedRange(*seed, *reliability),
			Duration: simclock.Time(*weeks) * simclock.Week,
			Configure: func(s int64) core.Config {
				cfg := core.DefaultConfig()
				cfg.Seed = s
				if *scale > 1 {
					cfg.Spec = testbed.ScaledSpec(*scale)
				}
				return cfg
			},
		})
		gw.SetReliabilityTrend(intel.TrendFromFleet(res, *seed, *weeks))
		log.Printf("reliability trend installed: GET /reliability/trend")
	}

	if *runLoad {
		if err := loadTest(gw, mix, *workers, *requests, *rate, *mixName, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "g5kapi: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *live {
		simStep := simclock.Time(*step)
		go func() {
			for range time.Tick(time.Second) {
				gw.Advance(simStep)
			}
		}()
		log.Printf("live mode: +%v of simulated time per wall second", *step)
	}
	log.Printf("testbed API gateway on %s (try /, /sites, /oar/resources, /ref/inventory, /metrics)", *addr)
	log.Fatal(http.ListenAndServe(*addr, gw))
}

// monolithicMix picks the classic scenario mix for a single-shard gateway.
func monolithicMix(name string, tb *testbed.Testbed) ([]loadgen.Scenario, error) {
	clusters := make([]string, 0, 8)
	for _, cl := range tb.Clusters() {
		clusters = append(clusters, cl.Name)
		if len(clusters) == 8 {
			break
		}
	}
	switch name {
	case "default":
		return loadgen.DefaultMix(clusters), nil
	case "scrape":
		return loadgen.ScrapeOnlyMix(clusters), nil
	case "submit":
		return []loadgen.Scenario{loadgen.SubmitHeavy(clusters)}, nil
	}
	return nil, fmt.Errorf("unknown -mix %q (default|scrape|submit)", name)
}

// federatedTargets derives the site-pinned loadgen targets from a
// federation: every site with its clusters and one monitored node. The
// federation shards per cluster, so each site's micro-shards fold into
// one target.
func federatedTargets(fed *federation.Federation) []loadgen.SiteTarget {
	var out []loadgen.SiteTarget
	idx := map[string]int{}
	for _, sh := range fed.Shards() {
		i, ok := idx[sh.Site]
		if !ok {
			i = len(out)
			idx[sh.Site] = i
			out = append(out, loadgen.SiteTarget{Site: sh.Site})
		}
		for _, cl := range sh.F.TB.Clusters() {
			out[i].Clusters = append(out[i].Clusters, cl.Name)
		}
		if nodes := sh.F.TB.Nodes(); len(out[i].Nodes) == 0 && len(nodes) > 0 {
			out[i].Nodes = []string{nodes[0].Name}
		}
	}
	return out
}

// loadTest drives the gateway through the in-process transport — no
// listener, no socket stack, just the service code under concurrency.
func loadTest(gw *gateway.Gateway, mix []loadgen.Scenario, workers, requests int, rate float64, mixName string, seed int64) error {
	newClient := func(int) (*http.Client, string) {
		return inproc.Client(gw), "http://gateway.local"
	}
	var rep *loadgen.Report
	if rate > 0 {
		fmt.Printf("open-loop: %d arrivals of %q at %g req/s on %d workers...\n",
			requests, mixName, rate, workers)
		olr, err := loadgen.RunOpenLoop(loadgen.OpenLoopConfig{
			Rate:       rate,
			Requests:   requests,
			Workers:    workers,
			Mix:        mix,
			Seed:       seed,
			JitterFrac: 0.2,
			NewClient:  newClient,
		})
		if err != nil {
			return err
		}
		rep = &olr.Report
		defer fmt.Printf("\nrates: offered %.1f req/s, achieved %.1f req/s\n",
			olr.OfferedRate, olr.AchievedRate)
	} else {
		fmt.Printf("load-generating %d iterations of %q on %d workers...\n", requests, mixName, workers)
		var err error
		rep, err = loadgen.Run(loadgen.Config{
			Workers:   workers,
			Requests:  requests,
			Mix:       mix,
			Seed:      seed,
			NewClient: newClient,
		})
		if err != nil {
			return err
		}
	}
	fmt.Println()
	fmt.Print(rep.String())
	if mixName == "disaster" {
		fmt.Println()
		fmt.Print(rep.Availability().String())
	}

	fmt.Println("\ngateway metrics:")
	m := gw.Metrics()
	fmt.Printf("  %-18s %8d requests, %d errors\n", "total", m.Requests, m.Errors)
	for _, ep := range []string{"/sites", "/sites/", "/ref/inventory", "/ref/diff", "/oar/resources", "/oar/jobs", "/oar/submit", "/admit/queue", "/status/grid", "/status/trend", "/bugs", "/ci/", "/metrics"} {
		em, ok := m.Endpoints[ep]
		if !ok || em.Requests == 0 {
			continue
		}
		fmt.Printf("  %-18s %8d requests, %5d × 304, avg %7.1fµs, max %.0fµs\n",
			ep, em.Requests, em.NotModified, em.AvgMicros, em.MaxMicros)
	}
	return nil
}
