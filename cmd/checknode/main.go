// Command checknode runs the g5k-checks equivalent from the command line:
// it verifies nodes (or whole clusters) against the Reference API, with
// optional fault injection to demonstrate detection.
//
// Usage:
//
//	checknode [-cluster NAME | -node NAME] [-inject KIND] [-seed S] [-workers N]
//
// Examples:
//
//	checknode -cluster griffon
//	checknode -cluster griffon -workers 8
//	checknode -node taurus-3.lyon -inject cstates-on
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checks"
	"repro/internal/faults"
	"repro/internal/refapi"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

func main() {
	cluster := flag.String("cluster", "", "check every node of this cluster")
	node := flag.String("node", "", "check a single node")
	inject := flag.String("inject", "", "inject this fault kind on the target before checking")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 1, "parallel sweep fan-out for cluster checks")
	flag.Parse()

	if (*cluster == "") == (*node == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -cluster or -node is required")
		flag.Usage()
		os.Exit(2)
	}

	clock := simclock.New(*seed)
	tb := testbed.Default()
	ref := refapi.NewStore(tb, clock.Now())
	inj := faults.NewInjector(clock, tb)
	checker := checks.NewChecker(clock, tb, ref)

	target := *node
	if target == "" {
		cl := tb.Cluster(*cluster)
		if cl == nil {
			fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *cluster)
			os.Exit(1)
		}
		target = cl.Nodes[0].Name
	}
	if *inject != "" {
		if _, err := inj.InjectNode(faults.Kind(*inject), target); err != nil {
			fmt.Fprintf(os.Stderr, "inject: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("injected %s on %s\n", *inject, target)
	}

	exit := 0
	if *node != "" {
		rep, err := checker.CheckNode(*node)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printReport(rep, &exit)
	} else {
		var reports []*checks.Report
		var failing []string
		var err error
		if *workers > 1 {
			// Parallel sweeps run on simulation goroutines; drive the clock
			// from here, the way the CI server drives its executor pool.
			clock.Go(func() {
				reports, failing, err = checker.CheckClusterParallel(*cluster, *workers)
			})
			clock.Run()
		} else {
			reports, failing, err = checker.CheckCluster(*cluster)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, rep := range reports {
			printReport(rep, &exit)
		}
		fmt.Printf("%d/%d nodes OK\n", len(reports)-len(failing), len(reports))
	}
	os.Exit(exit)
}

func printReport(rep *checks.Report, exit *int) {
	fmt.Println(rep.Summary())
	for _, m := range rep.Mismatches {
		fmt.Printf("    %s\n", m)
		*exit = 1
	}
}
