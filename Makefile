GO ?= go

.PHONY: all build vet fmt-check test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the full experiment suite once and records every number
# (ns/op, allocs/op, reproduced sim metrics) in BENCH_results.json via
# cmd/benchjson, so perf regressions show up as reviewable diffs.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o BENCH_results.json < bench.out; st=$$?; rm -f bench.out; exit $$st

check: build vet fmt-check race
