GO ?= go

# Benchmarks whose ns_per_op / allocs_per_op are gated by bench-check.
TRACKED_BENCHES = BenchmarkE2_,BenchmarkE9_,BenchmarkE12_,BenchmarkE13_,BenchmarkE14_,BenchmarkE15_,BenchmarkE16_,BenchmarkE17_
# Benchmarks gated on allocs_per_op only: E18–E21 spend their time in
# real concurrent load generation or whole-campaign replays, so their
# ns/op varies ±25% between runs even on one machine — allocs/op is
# their reproducible axis (their correctness gates — determinism,
# availability, bounded queues, shed contract, archive/incident
# invariants, the 16x balanced-advance efficiency floor — run inside the
# benchmarks themselves).
TRACKED_ALLOCS_BENCHES = BenchmarkE18_,BenchmarkE19_,BenchmarkE20_,BenchmarkE21_

.PHONY: all build vet lint fmt-check test race stress fed-check chaos-check admit-check intel-check bench bench-check check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repository's own static-analysis suite (cmd/g5kvet): five
# analyzers enforcing the simulator's determinism and concurrency
# invariants — walltime, globalrand, maporder, atomicfield, baregoroutine —
# over every non-test source. A finding fails the build unless a
# //g5k:allow <analyzer> <reason> directive suppresses it; reasonless or
# mistargeted directives are findings themselves.
lint:
	$(GO) run ./cmd/g5kvet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# stress runs the gateway's concurrency stress test at full size under the
# race detector: 16 clients hammering every endpoint family while the
# campaign advances underneath them.
stress:
	GATEWAY_STRESS=1 $(GO) test -race -count=1 -run 'TestStress|TestInventoryETagUnderChurn' ./internal/gateway

# fed-check proves the federation's load-bearing property under the race
# detector: stepping the per-cluster micro-shards serially, with the
# work-stealing schedule, or with the legacy whole-site-per-worker
# schedule yields bit-identical per-site and merged summaries.
fed-check:
	$(GO) test -race -count=1 -run 'TestFederationSerialParallelDeterminism' ./internal/federation

# chaos-check runs the site-scale disaster drills under the race detector:
# degraded-mode stepping (outage freeze, heal catch-up, partition merge
# exclusion, serial ≡ parallel determinism mid-disaster) and the gateway's
# degraded routing (lost sites 503 with Retry-After, merges carry the
# degraded marker, /chaos inject/heal round trips).
chaos-check:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/federation ./internal/gateway

# admit-check drills the grid admission layer under the race detector: the
# controller's placement determinism, fairness and breaker transitions
# (internal/admit) plus the gateway-level queue-under-chaos and
# duplicate-cluster routing drills.
admit-check:
	$(GO) test -race -count=1 ./internal/admit
	$(GO) test -race -count=1 -run 'TestAdmission|TestDuplicateCluster' ./internal/gateway

# intel-check drills the grid intelligence layer under the race detector:
# the archive/incident/reliability unit suite (internal/intel) plus the
# gateway-level endpoint drills — /grid/at and /grid/diff conditional
# semantics, the incident rollup and its time scoping, the reliability
# trend's shared-renderer equality, the ?at= inventory satellite, the
# rollup ETag, and the E18-style degraded-mode drill (intel views exclude
# a downed site and re-key until heal).
intel-check:
	$(GO) test -race -count=1 ./internal/intel
	$(GO) test -race -count=1 -run 'TestGridAt|TestGridDiff|TestIncidents|TestReliability|TestShardInventoryAt|TestFederatedVersionHint|TestBugsRollup|TestIntelUnderChaos' ./internal/gateway

# bench runs the full experiment suite once and records every number
# (ns/op, allocs/op, reproduced sim metrics) in BENCH_results.json via
# cmd/benchjson, so perf regressions show up as reviewable diffs.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o BENCH_results.json < bench.out; st=$$?; rm -f bench.out; exit $$st

# bench-check re-runs the suite and fails when a tracked benchmark's
# ns_per_op or allocs_per_op regressed >20% against the committed
# BENCH_results.json. Benchmarks whose baseline runs under 1ms skip the
# ns gate (a single sub-ms sample at -benchtime=1x is scheduling noise;
# allocs stay gated). It also writes the fresh numbers to bench-check.json
# (not the committed baseline) so CI can archive them.
bench-check:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o bench-check.json -compare BENCH_results.json -max-regress 20% -track $(TRACKED_BENCHES) -track-allocs $(TRACKED_ALLOCS_BENCHES) -ns-floor 1ms < bench.out; st=$$?; rm -f bench.out; exit $$st

check: build vet lint fmt-check race intel-check
