GO ?= go

.PHONY: all build vet fmt-check test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .

check: build vet fmt-check race
