// Package repro reproduces "Towards Trustworthy Testbeds thanks to
// Throughout Testing" (Lucas Nussbaum, REPPAR'2017): a testing framework
// for large-scale experimental testbeds, demonstrated on a simulated
// Grid'5000-scale infrastructure.
//
// The public surface lives in the internal packages (this repository is a
// self-contained research artefact, consumed through its binaries,
// examples and benchmarks):
//
//   - internal/core — the assembled framework and operations simulation,
//     plus core.Fleet: parallel multi-seed campaign sweeps. A single
//     campaign is deterministic on one simulated clock; RunFleet
//     simulates N independently seeded campaigns concurrently on real OS
//     threads (race-free by construction — campaigns share nothing) and
//     aggregates the reliability trend and bug counters with mean ±
//     spread, the Monte-Carlo sensitivity view of the paper's
//     longitudinal result (g5ktest -seeds N is the CLI form)
//   - internal/federation — the campaign federated into per-cluster
//     micro-shards grouped under site labels, the architecture of the
//     paper's subject itself: every cluster gets a complete framework
//     (OAR, monitor, CI, faults, operators) on an independent RNG stream
//     (ShardSeed is a pure function of campaign seed, site and cluster
//     name), the site remains the unit of identity (per-site summaries
//     merge a site's micro-shards back into one report), and the
//     federation steps the shards through lockstep weekly barriers.
//     Within a tick a work-stealing scheduler queues micro-shards
//     longest-processing-time-first by node count and idle workers pull
//     the next unit, so the barrier's critical path is the mean shard,
//     not the max site; serial, work-stealing and the legacy
//     whole-site-per-worker schedule (Config.SiteGrouped) are
//     bit-identical (g5ktest -federated is the CLI form; make fed-check
//     races the three-way determinism proof). Site-scale grid events (internal/faults:
//     site-outage, wan-partition, rolling-maintenance) inject and heal
//     deterministically off the simulated clock: downed shards freeze
//     at the barrier and replay missed ticks on heal, partitioned
//     shards drop out of merged reporting, and serial ≡ parallel stays
//     bit-identical through the whole disaster (g5kapi -chaos arms a
//     schedule; make chaos-check races the drills)
//   - internal/gateway — the unified testbed API gateway: one
//     http.Handler mounting read-optimized JSON endpoints over every
//     subsystem (OAR resources/jobs/submission, the Reference API with
//     per-version ETags and a 304 path that never re-materializes
//     snapshots, monitoring queries, the bug tracker, the status views,
//     and the CI REST API proxied under /ci/), with per-endpoint atomic
//     request/error/latency counters at /metrics. The gateway serves one
//     or many shards: handlers hold only the owning micro-shard's read
//     lock, site-scoped routes under /sites/{site}/... touch exactly the
//     site's micro-shards, the classic paths scatter-gather federated
//     merges, and advances step each micro-shard under its own write
//     lock, so live serving stays coherent and one cluster's reads never
//     queue behind another's progress (g5kapi -live, -shards). Under grid
//     events the gateway degrades instead of failing: routes touching a
//     down site answer 503 with Retry-After, merges exclude lost sites
//     behind a degraded marker (absent when healthy), and POST
//     /chaos/inject | /chaos/heal drive events live
//   - internal/admit — the grid-level admission layer between the
//     gateway and the federation's shards: fully-unanchored submissions
//     scatter read-only CanStartNow probes across every live site and
//     place on the least-loaded one that can start now (integer
//     cross-multiplied load comparison, lexicographic tiebreak — serial
//     and parallel probing are bit-identical), requests no site can
//     start wait in a bounded fairness-aware reservation queue pumped
//     on every advance and chaos transition, overflow sheds with 429 +
//     Retry-After, and per-site breakers route placement away from
//     down, partitioned or persistently-refusing sites (GET
//     /admit/queue is the observability view; sched.GridPolicy defers
//     whole-cluster demands grid-wide during peak hours; make
//     admit-check races the drills)
//   - internal/intel — the grid intelligence layer over the federation:
//     GridArchive answers "the whole grid's inventory as of sim-time T"
//     by binary-searching every live shard's Reference-API archive
//     under its read gate, joined into a version-vector ETag whose body
//     is materialized from exactly the versions the vector names (GET
//     /grid/at, /grid/diff; /sites/{site}/ref/inventory?at=T is the
//     site-scoped form); Correlate folds same-signature bugs across all
//     sites' trackers into lifecycle-bearing incidents, snapshot-keyed
//     so any filing or fix anywhere re-keys the view and ?at=T replays
//     history (GET /incidents); and TrendFromFleet folds a core.Fleet
//     sweep into per-week success-rate confidence bands rendered by one
//     shared renderer — the CLI report (g5ktest -reliability) and a
//     render of the gateway's GET /reliability/trend body are
//     byte-identical (make intel-check races the drills)
//   - internal/loadgen — the workload engine: N client workers replay
//     weighted scenario mixes (operator-dashboard, api-scraper,
//     submit-heavy) and report throughput plus latency percentiles;
//     the disaster mix splits by-design 503s from real errors and
//     reports per-site availability, and RunOpenLoop drives a seeded
//     fixed-rate arrival schedule with latency charged from the
//     scheduled arrival — coordinated-omission-safe, the measure the
//     overload gate uses (g5kapi -loadgen [-rate N] is the CLI form)
//   - internal/inproc — in-process http.RoundTripper used by the status
//     page, the gateway's internal status client and the load generator
//     to consume HTTP APIs without a listener
//   - internal/suites — the 751 test configurations in 16 families
//   - internal/sched — the external test scheduler (the paper's core
//     custom development)
//   - internal/ci — the Jenkins-like automation server
//   - internal/testbed, refapi, oar, kadeploy, kavlan, monitor, checks,
//     faults, bugs — the simulated substrate
//   - internal/lint — the custom static-analysis suite (cmd/g5kvet is
//     the driver, `make lint` the entry point): five analyzers on a
//     dependency-free go/analysis-style framework that statically
//     enforce the determinism and concurrency invariants everything
//     above relies on — walltime (no wall-clock reads in simulation
//     packages), globalrand (no process-global math/rand), maporder (no
//     map-iteration order leaking into slices or emitted output),
//     atomicfield (all-or-nothing sync/atomic per struct field) and
//     baregoroutine (in-sim goroutines go through the simclock run
//     token). Findings are suppressed only by a //g5k:allow <analyzer>
//     <reason> directive; the reason is mandatory
//
// bench_test.go at the repository root regenerates every quantitative
// claim of the paper (E1–E10, plus E11–E21 added by this reproduction:
// executor-pool scaling, parallel verification sweeps, Reference API
// version churn, campaign-fleet scaling, API-gateway throughput scaling,
// the mixed gateway workload, the federated micro-shard advance,
// disaster availability under site-scale chaos, overload shedding
// through grid admission, grid intelligence — time-travel archive
// determinism, hot-304 flatness and cross-site incident folding — and
// the balanced micro-shard advance at 16x grid scale with its
// work-stealing barrier; E12/E13/E21 exercised against deterministic
// k×-scale testbeds from testbed.Scaled), smoke_test.go
// runs the same experiments at reduced scale as plain tests, and
// ablation_test.go compares the paper's mechanisms against their obvious
// alternatives. README.md maps the module layout; `make bench` records
// every benchmark number in BENCH_results.json and `make bench-check`
// fails the build when a tracked benchmark regresses against it.
package repro
