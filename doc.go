// Package repro reproduces "Towards Trustworthy Testbeds thanks to
// Throughout Testing" (Lucas Nussbaum, REPPAR'2017): a testing framework
// for large-scale experimental testbeds, demonstrated on a simulated
// Grid'5000-scale infrastructure.
//
// The public surface lives in the internal packages (this repository is a
// self-contained research artefact, consumed through its binaries,
// examples and benchmarks):
//
//   - internal/core — the assembled framework and operations simulation,
//     plus core.Fleet: parallel multi-seed campaign sweeps. A single
//     campaign is deterministic on one simulated clock; RunFleet
//     simulates N independently seeded campaigns concurrently on real OS
//     threads (race-free by construction — campaigns share nothing) and
//     aggregates the reliability trend and bug counters with mean ±
//     spread, the Monte-Carlo sensitivity view of the paper's
//     longitudinal result (g5ktest -seeds N is the CLI form)
//   - internal/suites — the 751 test configurations in 16 families
//   - internal/sched — the external test scheduler (the paper's core
//     custom development)
//   - internal/ci — the Jenkins-like automation server
//   - internal/testbed, refapi, oar, kadeploy, kavlan, monitor, checks,
//     faults, bugs — the simulated substrate
//
// bench_test.go at the repository root regenerates every quantitative
// claim of the paper (E1–E10, plus E11–E14 added by this reproduction:
// executor-pool scaling, parallel verification sweeps, Reference API
// version churn, and campaign-fleet scaling — E12/E13 exercised against
// deterministic k×-scale testbeds from testbed.Scaled), smoke_test.go
// runs the same experiments at reduced scale as plain tests, and
// ablation_test.go compares the paper's mechanisms against their obvious
// alternatives. README.md maps the module layout; `make bench` records
// every benchmark number in BENCH_results.json and `make bench-check`
// fails the build when a tracked benchmark regresses against it.
package repro
