// Package repro reproduces "Towards Trustworthy Testbeds thanks to
// Throughout Testing" (Lucas Nussbaum, REPPAR'2017): a testing framework
// for large-scale experimental testbeds, demonstrated on a simulated
// Grid'5000-scale infrastructure.
//
// The public surface lives in the internal packages (this repository is a
// self-contained research artefact, consumed through its binaries,
// examples and benchmarks):
//
//   - internal/core — the assembled framework and operations simulation
//   - internal/suites — the 751 test configurations in 16 families
//   - internal/sched — the external test scheduler (the paper's core
//     custom development)
//   - internal/ci — the Jenkins-like automation server
//   - internal/testbed, refapi, oar, kadeploy, kavlan, monitor, checks,
//     faults, bugs — the simulated substrate
//
// bench_test.go at the repository root regenerates every quantitative
// claim of the paper (E1–E10, plus E11–E13 added by this reproduction:
// executor-pool scaling, parallel verification sweeps, and Reference API
// version churn — the latter two exercised against deterministic k×-scale
// testbeds from testbed.Scaled), smoke_test.go runs the same experiments
// at reduced scale as plain tests, and ablation_test.go compares the
// paper's mechanisms against their obvious alternatives. README.md maps
// the module layout; `make bench` records every benchmark number in
// BENCH_results.json.
package repro
