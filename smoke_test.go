// Short-mode smoke coverage of the experiment harness: every E1–E10
// experiment of bench_test.go at reduced scale, as plain tests, so that
// `go test ./...` exercises the whole reproduction instead of reporting
// "no tests to run" for the root package.
package repro_test

import (
	"net/http/httptest"
	"testing"

	"repro/internal/checks"
	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kadeploy"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/suites"
	"repro/internal/testbed"
)

func TestExperimentsSmoke(t *testing.T) {
	t.Run("E1_TestbedScale", func(t *testing.T) {
		st := testbed.Default().Stats()
		if st.Sites != 8 || st.Clusters != 32 || st.Nodes != 894 || st.Cores != 8490 {
			t.Fatalf("scale mismatch: %s", st)
		}
	})

	t.Run("E2_NodeVerification", func(t *testing.T) {
		clock := simclock.New(1)
		tb := testbed.Default()
		ref := refapi.NewStore(tb, clock.Now())
		inj := faults.NewInjector(clock, tb)
		checker := checks.NewChecker(clock, tb, ref)
		// A handful of description-drift faults on known nodes.
		kinds := []faults.Kind{
			faults.DiskCacheOff, faults.CStatesOn, faults.HyperThreadFlip,
			faults.TurboFlip, faults.RAMLoss,
		}
		nodes := tb.Cluster("graphene").Nodes[:len(kinds)]
		for i, k := range kinds {
			if _, err := inj.InjectNode(k, nodes[i].Name); err != nil {
				t.Fatalf("inject %v on %s: %v", k, nodes[i].Name, err)
			}
		}
		for _, n := range nodes {
			rep, err := checker.CheckNode(n.Name)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK || len(rep.Mismatches) == 0 {
				t.Fatalf("drift on %s not detected", n.Name)
			}
		}
	})

	t.Run("E3_Deploy", func(t *testing.T) {
		clock := simclock.New(1)
		tb := testbed.Default()
		d := kadeploy.NewDeployer(clock, faults.NewInjector(clock, tb))
		nodes := tb.Cluster("griffon").Nodes[:50]
		res, err := d.Deploy(nodes, kadeploy.StdEnv)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK < 45 {
			t.Fatalf("only %d/50 nodes deployed", res.OK)
		}
		if min := res.Duration.Duration().Minutes(); min > 10 {
			t.Fatalf("deployment took %.1f sim-minutes", min)
		}
	})

	t.Run("E4_MonitoringRate", func(t *testing.T) {
		clock := simclock.New(1)
		tb := testbed.Default()
		col := monitor.NewCollector(clock, tb, faults.NewInjector(clock, tb))
		clock.RunUntil(2 * simclock.Minute)
		n := tb.Cluster("taurus").Nodes[0]
		ss, err := col.Query(monitor.MetricPowerW, n.Name, 0, simclock.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if len(ss) != 61 { // 1 Hz inclusive grid over 60 s
			t.Fatalf("samples = %d, want 61", len(ss))
		}
		if err := monitor.CheckRate(ss); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("E5_MatrixEnvironments", func(t *testing.T) {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 0
		cfg.FaultMeanInterval = 0
		cfg.UserJobInterval = 0
		cfg.EnvMatrixPeriod = 0
		f := core.New(cfg)
		f.Start()
		parent, err := f.CI.Trigger("environments", "smoke")
		if err != nil {
			t.Fatal(err)
		}
		f.RunFor(2 * simclock.Day)
		if !parent.Completed() {
			t.Fatal("matrix did not complete in 2 sim-days")
		}
		if len(parent.CellBuilds) != 448 {
			t.Fatalf("cells = %d, want 448", len(parent.CellBuilds))
		}
	})

	t.Run("E6_SchedulerPolicies", func(t *testing.T) {
		clock := simclock.New(5)
		tb := testbed.Default()
		oarSrv := oar.NewServer(clock, tb)
		ciSrv := ci.NewServerWith(clock, ci.Options{NumExecutors: 4})
		s := sched.New(clock, oarSrv, ciSrv, sched.DefaultConfig())
		req := "cluster='sol'/nodes=ALL,walltime=1"
		ciSrv.CreateJob(&ci.Job{Name: "disk/sol", Script: func(bc *ci.BuildContext) ci.Outcome {
			j, _ := oarSrv.Submit(req, oar.SubmitOptions{User: "jenkins", Immediate: true})
			if j.State != oar.Running {
				return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
			}
			return ci.Outcome{Result: ci.Success, Duration: 30 * simclock.Minute}
		}})
		s.Register(&sched.Spec{Name: "disk/sol", JobName: "disk/sol", Cluster: "sol",
			Site: "sophia", Kind: sched.HardwareCentric, Request: req, Period: simclock.Day})
		// Users pin most of sol, so resource deferrals with growing backoff
		// are guaranteed.
		oarSrv.Submit("cluster='sol'/nodes=16,walltime=48", oar.SubmitOptions{User: "alice"})
		s.Start()
		clock.RunFor(simclock.Day)
		s.Stop()
		counts := s.DecisionCounts()
		if counts[sched.ActionDeferResources] == 0 {
			t.Fatalf("no resource deferrals: %v", counts)
		}
	})

	t.Run("E7_TestCoverage", func(t *testing.T) {
		tb := testbed.Default()
		if total := suites.ConfigurationCount(tb); total != 751 {
			t.Fatalf("configurations = %d, want 751", total)
		}
		if fams := len(suites.CountByFamily(tb)); fams != 16 {
			t.Fatalf("families = %d, want 16", fams)
		}
	})

	t.Run("E8_BugCampaign", func(t *testing.T) {
		f := core.New(core.BugHuntConfig(42))
		f.Start()
		f.RunFor(10 * simclock.Day)
		st := f.Bugs.Stats()
		if st.Filed == 0 {
			t.Fatal("campaign filed no bugs")
		}
		if st.Fixed+st.Open != st.Filed {
			t.Fatalf("bug accounting off: %+v", st)
		}
	})

	t.Run("E9_ReliabilityTrend", func(t *testing.T) {
		f := core.New(core.PaperCampaignConfig(42))
		f.Start()
		f.RunFor(3 * simclock.Week)
		weekly := f.WeeklyReport()
		if len(weekly) < 3 {
			t.Fatalf("weekly report has %d weeks", len(weekly))
		}
		for _, w := range weekly {
			if w.Total() > 0 && (w.Rate() <= 0 || w.Rate() > 1) {
				t.Fatalf("week %d rate %.3f out of range", w.Week, w.Rate())
			}
		}
	})

	t.Run("E10_StatusAggregation", func(t *testing.T) {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 5
		f := core.New(cfg)
		f.Start()
		f.RunFor(2 * simclock.Day)
		ts := httptest.NewServer(f.CI.Handler())
		defer ts.Close()
		grid, err := status.NewClient(ts.URL).BuildGrid()
		if err != nil {
			t.Fatal(err)
		}
		cells := 0
		for _, fam := range grid.Families {
			cells += len(grid.Cells[fam])
		}
		if cells == 0 {
			t.Fatal("empty status grid")
		}
	})
}
