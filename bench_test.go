// Benchmark harness regenerating every quantitative claim of the paper
// (each bench's comment names the slide it reproduces). Absolute
// wall-clock numbers are Go performance; the *reported metrics* (sim_* and
// count metrics) are the reproduced results.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/checks"
	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/inproc"
	"repro/internal/kadeploy"
	"repro/internal/loadgen"
	"repro/internal/monitor"
	"repro/internal/oar"
	"repro/internal/refapi"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/status"
	"repro/internal/suites"
	"repro/internal/testbed"
)

// ---- E1: testbed scale (slide 6) ------------------------------------------

func BenchmarkE1_TestbedScale(b *testing.B) {
	var st testbed.Stats
	for i := 0; i < b.N; i++ {
		tb := testbed.Default()
		st = tb.Stats()
	}
	if st.Sites != 8 || st.Clusters != 32 || st.Nodes != 894 || st.Cores != 8490 {
		b.Fatalf("scale mismatch: %s", st)
	}
	b.ReportMetric(float64(st.Sites), "sites")
	b.ReportMetric(float64(st.Clusters), "clusters")
	b.ReportMetric(float64(st.Nodes), "nodes")
	b.ReportMetric(float64(st.Cores), "cores")
}

// ---- E2: node verification catches description drift (slide 7) -------------
//
// The timed section is the verification sweep itself — the g5k-checks hot
// path this repository optimises: CheckNodeInto borrows live inventories
// and diffs them field-natively into a reused report, so a clean node costs
// zero allocations (testbed generation and fault placement are untimed
// setup). Before the zero-allocation rewrite this benchmark reported
// 57905 allocs/op with setup included (~42k of them in the sweep).

func BenchmarkE2_NodeVerification(b *testing.B) {
	const injected = 40
	clock := simclock.New(1)
	tb := testbed.Default()
	ref := refapi.NewStore(tb, clock.Now())
	inj := faults.NewInjector(clock, tb)
	checker := checks.NewChecker(clock, tb, ref)

	// Inject only description-drift faults (behavioural ones are out of
	// g5k-checks' scope by design). The drifted testbed is reused across
	// iterations: every sweep does identical verification work.
	driftKinds := []faults.Kind{
		faults.DiskFirmwareDrift, faults.DiskCacheOff, faults.CStatesOn,
		faults.HyperThreadFlip, faults.TurboFlip, faults.RAMLoss, faults.WrongKernel,
	}
	placed := 0
	for placed < injected {
		k := driftKinds[clock.Rand().Intn(len(driftKinds))]
		n := simclock.Pick(clock.Rand(), tb.Nodes())
		if _, err := inj.InjectNode(k, n.Name); err == nil {
			placed++
		}
	}
	nodes := tb.Nodes()
	rep := &checks.Report{}

	var detected, nodesChecked int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detected, nodesChecked = 0, 0
		for _, n := range nodes {
			if err := checker.CheckNodeInto(n.Name, rep); err != nil {
				b.Fatal(err)
			}
			nodesChecked++
			if !rep.OK {
				detected += len(rep.Mismatches)
			}
		}
		if detected < injected {
			b.Fatalf("checks found %d/%d injected drifts", detected, injected)
		}
	}
	b.ReportMetric(float64(injected), "faults_injected")
	b.ReportMetric(float64(detected), "mismatches_found")
	b.ReportMetric(float64(nodesChecked), "nodes_verified")
}

// ---- E3: Kadeploy, 200 nodes in ≈5 minutes (slide 8) ------------------------

func BenchmarkE3_Deploy200Nodes(b *testing.B) {
	var minutes float64
	var okNodes int
	for i := 0; i < b.N; i++ {
		clock := simclock.New(int64(i) + 1)
		tb := testbed.Default()
		inj := faults.NewInjector(clock, tb)
		d := kadeploy.NewDeployer(clock, inj)
		var nodes []*testbed.Node
		for _, cl := range []string{"griffon", "graphene", "graoully", "grisou"} {
			nodes = append(nodes, tb.Cluster(cl).Nodes...)
		}
		res, err := d.Deploy(nodes[:200], kadeploy.StdEnv)
		if err != nil {
			b.Fatal(err)
		}
		minutes = res.Duration.Duration().Minutes()
		okNodes = res.OK
	}
	b.ReportMetric(minutes, "sim_minutes")
	b.ReportMetric(float64(okNodes), "nodes_deployed")
}

// ---- E4: monitoring at ≈1 Hz (slide 9) --------------------------------------

func BenchmarkE4_MonitoringRate(b *testing.B) {
	clock := simclock.New(1)
	tb := testbed.Default()
	inj := faults.NewInjector(clock, tb)
	col := monitor.NewCollector(clock, tb, inj)
	clock.RunUntil(2 * simclock.Minute)
	var samples int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range tb.Cluster("taurus").Nodes {
			ss, err := col.Query("power_w", n.Name, 0, simclock.Minute)
			if err != nil {
				b.Fatal(err)
			}
			samples = len(ss)
		}
	}
	// 61 samples over 60 s ⇒ 1 Hz inclusive grid.
	if samples != 61 {
		b.Fatalf("samples = %d, want 61", samples)
	}
	b.ReportMetric(float64(samples-1)/60.0, "hz")
}

// ---- E5: environments matrix, 14 × 32 = 448 configurations (slide 15) ------

func BenchmarkE5_MatrixEnvironments(b *testing.B) {
	var cells, success int
	var simHours float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i) + 1
		cfg.InitialFaults = 0
		cfg.FaultMeanInterval = 0
		cfg.UserJobInterval = 0
		cfg.EnvMatrixPeriod = 0
		f := core.New(cfg)
		f.Start()
		parent, err := f.CI.Trigger("environments", "bench")
		if err != nil {
			b.Fatal(err)
		}
		f.RunFor(2 * simclock.Day)
		if !parent.Completed() {
			b.Fatal("matrix did not complete in 2 sim-days")
		}
		cells, success = 0, 0
		for _, num := range parent.CellBuilds {
			cb := f.CI.Build("environments", num)
			cells++
			if cb.Result == ci.Success {
				success++
			}
		}
		simHours = (parent.EndedAt - parent.StartedAt).Duration().Hours()
	}
	if cells != 448 {
		b.Fatalf("cells = %d, want 448", cells)
	}
	b.ReportMetric(float64(cells), "configurations")
	b.ReportMetric(float64(success), "green_cells")
	b.ReportMetric(simHours, "sim_hours")
}

// ---- E6: scheduler policies (slides 16–17) ----------------------------------

func BenchmarkE6_SchedulerPolicies(b *testing.B) {
	var counts map[sched.Action]int
	var maxBackoffH float64
	var unstables int
	for i := 0; i < b.N; i++ {
		clock := simclock.New(int64(i) + 5)
		tb := testbed.Default()
		oarSrv := oar.NewServer(clock, tb)
		ciSrv := ci.NewServer(clock, 8)
		s := sched.New(clock, oarSrv, ciSrv, sched.DefaultConfig())

		mkJob := func(name, req string) {
			ciSrv.CreateJob(&ci.Job{Name: name, Script: func(bc *ci.BuildContext) ci.Outcome {
				j, _ := oarSrv.Submit(req, oar.SubmitOptions{User: "jenkins", Immediate: true})
				if j.State != oar.Running {
					return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
				}
				clock.After(30*simclock.Minute, func() { oarSrv.Release(j.ID) })
				return ci.Outcome{Result: ci.Success, Duration: 30 * simclock.Minute}
			}})
		}
		// Three hardware tests on sophia (same-site policy) + one on lyon.
		for _, cl := range []string{"sol", "helios", "uvb"} {
			req := "cluster='" + cl + "'/nodes=ALL,walltime=1"
			mkJob("disk/"+cl, req)
			s.Register(&sched.Spec{Name: "disk/" + cl, JobName: "disk/" + cl,
				Cluster: cl, Site: "sophia", Kind: sched.HardwareCentric,
				Request: req, Period: simclock.Day})
		}
		mkJob("disk/taurus", "cluster='taurus'/nodes=ALL,walltime=1")
		s.Register(&sched.Spec{Name: "disk/taurus", JobName: "disk/taurus",
			Cluster: "taurus", Site: "lyon", Kind: sched.HardwareCentric,
			Request: "cluster='taurus'/nodes=ALL,walltime=1", Period: simclock.Day})

		// Users hold most of sol for two days straight.
		oarSrv.Submit("cluster='sol'/nodes=16,walltime=48", oar.SubmitOptions{User: "alice"})

		s.Start()
		clock.RunFor(3 * simclock.Day)
		s.Stop()

		counts = s.DecisionCounts()
		maxBackoffH = 0
		for _, d := range s.Decisions() {
			if h := d.Backoff.Duration().Hours(); h > maxBackoffH {
				maxBackoffH = h
			}
		}
		unstables = 0
		for _, st := range s.Stats() {
			unstables += st.Unstables
		}
	}
	if counts[sched.ActionDeferResources] == 0 || counts[sched.ActionDeferPeak] == 0 {
		b.Fatalf("policies not exercised: %v", counts)
	}
	b.ReportMetric(float64(counts[sched.ActionTriggered]), "triggered")
	b.ReportMetric(float64(counts[sched.ActionDeferResources]), "defer_resources")
	b.ReportMetric(float64(counts[sched.ActionDeferPeak]), "defer_peak")
	b.ReportMetric(float64(counts[sched.ActionDeferSiteBusy]), "defer_site")
	b.ReportMetric(maxBackoffH, "max_backoff_hours")
	b.ReportMetric(float64(unstables), "unstable_builds")
}

// ---- E7: test coverage, 751 configurations in 16 families (slide 21) --------

func BenchmarkE7_TestCoverage(b *testing.B) {
	var total, families int
	for i := 0; i < b.N; i++ {
		tb := testbed.Default()
		total = suites.ConfigurationCount(tb)
		families = len(suites.CountByFamily(tb))
	}
	if total != 751 || families != 16 {
		b.Fatalf("coverage = %d configurations in %d families", total, families)
	}
	b.ReportMetric(float64(total), "configurations")
	b.ReportMetric(float64(families), "families")
}

// ---- E8: bug campaign, "118 bugs filed (inc. 84 fixed)" (slide 22) ----------

func BenchmarkE8_BugCampaign(b *testing.B) {
	var filed, fixed, open int
	for i := 0; i < b.N; i++ {
		f := core.New(core.BugHuntConfig(int64(i) + 42))
		f.Start()
		f.RunFor(3 * simclock.Week)
		st := f.Bugs.Stats()
		filed, fixed, open = st.Filed, st.Fixed, st.Open
	}
	if filed < 80 || fixed < filed/2 {
		b.Fatalf("campaign shape off: filed=%d fixed=%d", filed, fixed)
	}
	b.ReportMetric(float64(filed), "bugs_filed")
	b.ReportMetric(float64(fixed), "bugs_fixed")
	b.ReportMetric(float64(open), "bugs_open")
}

// ---- E9: reliability trend, 85 % → 93 % (slide 23) ---------------------------

func BenchmarkE9_ReliabilityTrend(b *testing.B) {
	var first, last float64
	var weeks int
	for i := 0; i < b.N; i++ {
		f := core.New(core.PaperCampaignConfig(int64(i) + 42))
		f.Start()
		f.RunFor(10 * simclock.Week)
		weekly := f.WeeklyReport()
		weeks = len(weekly)
		first = weekly[0].Rate()
		// Average the final three weeks to smooth noise.
		sum, n := 0.0, 0
		for _, wc := range weekly[len(weekly)-3:] {
			sum += wc.Rate()
			n++
		}
		last = sum / float64(n)
	}
	if first > 0.90 || last < first {
		b.Fatalf("trend shape off: %.3f → %.3f", first, last)
	}
	b.ReportMetric(100*first, "first_week_pct")
	b.ReportMetric(100*last, "final_weeks_pct")
	b.ReportMetric(float64(weeks), "weeks")
}

// ---- E10: status page aggregation (slides 18–19) -----------------------------

func BenchmarkE10_StatusAggregation(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.InitialFaults = 10
	f := core.New(cfg)
	f.Start()
	f.RunFor(simclock.Week)
	ts := httptest.NewServer(f.CI.Handler())
	defer ts.Close()
	client := status.NewClient(ts.URL)

	var gridCells int
	var okRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := client.BuildGrid()
		if err != nil {
			b.Fatal(err)
		}
		gridCells = 0
		for _, fam := range grid.Families {
			gridCells += len(grid.Cells[fam])
		}
		okRate = grid.OKRate()
	}
	if gridCells == 0 {
		b.Fatal("empty grid")
	}
	b.ReportMetric(float64(gridCells), "grid_cells")
	b.ReportMetric(100*okRate, "ok_rate_pct")
}

// ---- E11: executor pool scaling (this reproduction's extension) -------------
//
// The paper's CI server runs builds on a bounded executor pool. This bench
// measures campaign throughput — completed builds per simulated hour over a
// fixed backlog of independent test configurations — as the pool grows
// from 1 to 8 executors. Same-job serialization means the parallelism comes
// entirely from the pool fanning distinct configurations out across worker
// goroutines.

func BenchmarkE11_ExecutorScaling(b *testing.B) {
	const jobCount = 96
	campaign := func(executors int) float64 {
		clock := simclock.New(11)
		s := ci.NewServerWith(clock, ci.Options{NumExecutors: executors})
		for i := 0; i < jobCount; i++ {
			name := fmt.Sprintf("cfg-%03d", i)
			// Deterministic 20–40 minute builds, varied per configuration.
			dur := (20 + simclock.Time(i%21)) * simclock.Minute
			if err := s.CreateJob(&ci.Job{Name: name, Script: func(bc *ci.BuildContext) ci.Outcome {
				return ci.Outcome{Result: ci.Success, Duration: dur}
			}}); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Trigger(name, "campaign"); err != nil {
				b.Fatal(err)
			}
		}
		clock.Run()
		if s.TotalBuilds() != jobCount {
			b.Fatalf("completed %d of %d builds at %d executors", s.TotalBuilds(), jobCount, executors)
		}
		makespan := clock.Now().Duration().Hours()
		return float64(jobCount) / makespan
	}

	pools := []int{1, 2, 4, 8}
	tput := make([]float64, len(pools))
	for i := 0; i < b.N; i++ {
		for k, e := range pools {
			tput[k] = campaign(e)
		}
	}
	if tput[2] < 1.5*tput[0] {
		b.Fatalf("4-executor throughput %.2f builds/simh is not >1.5x the 1-executor %.2f",
			tput[2], tput[0])
	}
	for k, e := range pools {
		b.ReportMetric(tput[k], fmt.Sprintf("builds_per_simhour_x%d", e))
	}
	b.ReportMetric(tput[2]/tput[0], "speedup_x4")
	b.ReportMetric(tput[3]/tput[0], "speedup_x8")
}

// ---- E12: parallel verification sweep scaling (reproduction extension) ------
//
// A whole-testbed g5k-checks sweep sharded over simclock run-token worker
// goroutines (checks.CheckTestbedParallel), each node check occupying 30
// simulated seconds of its worker — the management-network fan-out the real
// campaign uses. Throughput is nodes verified per simulated hour; the
// speedup over one worker is the reproduced result.

func BenchmarkE12_SweepScaling(b *testing.B) {
	sweep := func(workers int) float64 {
		clock := simclock.New(13)
		tb := testbed.Default()
		ref := refapi.NewStore(tb, clock.Now())
		checker := checks.NewChecker(clock, tb, ref)
		checker.CheckCost = 30 * simclock.Second

		var reports []*checks.Report
		var err error
		clock.Go(func() { reports, _, err = checker.CheckTestbedParallel(workers) })
		clock.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != tb.TotalNodes() {
			b.Fatalf("sweep covered %d of %d nodes", len(reports), tb.TotalNodes())
		}
		for _, r := range reports {
			if !r.OK {
				b.Fatalf("healthy testbed failed verification: %s", r.Summary())
			}
		}
		return float64(len(reports)) / clock.Now().Duration().Hours()
	}

	pools := []int{1, 2, 4, 8}
	tput := make([]float64, len(pools))
	for i := 0; i < b.N; i++ {
		for k, w := range pools {
			tput[k] = sweep(w)
		}
	}
	if tput[2] < 2*tput[0] {
		b.Fatalf("4-worker sweep throughput %.1f nodes/simh is not >2x the 1-worker %.1f",
			tput[2], tput[0])
	}
	for k, w := range pools {
		b.ReportMetric(tput[k], fmt.Sprintf("nodes_per_simhour_x%d", w))
	}
	b.ReportMetric(tput[2]/tput[0], "speedup_x4")
	b.ReportMetric(tput[3]/tput[0], "speedup_x8")
}

// ---- E14: parallel multi-seed campaign fleet (reproduction extension) -------
//
// core.Fleet runs N independently seeded campaigns across real OS threads
// (each owns its simclock, so the sweep is race-free by construction) and
// aggregates the trend with mean ± spread. This bench runs the same 4-seed
// paper-profile sweep serially and at 4-way parallelism: per-seed results
// must be bit-identical, and wall-clock throughput must scale with the
// cores actually available — ≥3x at 4 workers on a ≥4-core machine. The
// assertion normalises to min(4, GOMAXPROCS) so the gate stays meaningful
// on smaller CI machines, and trips only below 60% efficiency to leave
// room for noisy-neighbor jitter on shared runners (the exact ratio is
// still recorded as speedup_x4 / parallel_efficiency_pct; determinism is
// asserted unconditionally).

func BenchmarkE14_CampaignFleet(b *testing.B) {
	const nSeeds = 4
	fc := core.FleetConfig{
		Seeds:    core.SeedRange(42, nSeeds),
		Duration: 2 * simclock.Week,
	}
	run := func(parallel int) (*core.FleetResult, float64) {
		fc.Parallel = parallel
		start := time.Now()
		res := core.RunFleet(fc)
		return res, time.Since(start).Seconds()
	}

	var speedup, eff float64
	var serial *core.FleetResult
	for i := 0; i < b.N; i++ {
		r1, t1 := run(1)
		r4, t4 := run(4)
		serial = r1
		for k := range r1.Campaigns {
			if r1.Campaigns[k].Summary != r4.Campaigns[k].Summary {
				b.Fatalf("seed %d diverged between serial and parallel sweeps",
					r1.Campaigns[k].Seed)
			}
		}
		speedup = t1 / t4
		ideal := min(nSeeds, runtime.GOMAXPROCS(0))
		eff = speedup / float64(ideal)
		if eff < 0.6 {
			b.Fatalf("fleet speedup %.2fx at 4 workers is <60%% of the %dx this %d-core machine allows",
				speedup, ideal, runtime.GOMAXPROCS(0))
		}
	}
	if serial.FirstWeek.N != nSeeds || serial.FirstWeek.Mean > 0.92 {
		b.Fatalf("fleet trend shape off: %+v", serial.FirstWeek)
	}
	b.ReportMetric(speedup, "speedup_x4")
	b.ReportMetric(100*eff, "parallel_efficiency_pct")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(nSeeds), "seeds")
	b.ReportMetric(100*serial.FirstWeek.Mean, "first_week_mean_pct")
	b.ReportMetric(100*serial.FirstWeek.Std, "first_week_std_pct")
	b.ReportMetric(100*serial.FinalWeeks.Mean, "final_weeks_mean_pct")
	b.ReportMetric(serial.BugsFiled.Mean, "bugs_filed_mean")
	b.ReportMetric(serial.BugsFiled.Std, "bugs_filed_std")
}

// ---- E13: Reference API version churn is O(changed nodes) -------------------
//
// Before the copy-on-write store, every single-node Update deep-copied the
// whole snapshot — O(total nodes) time and memory per version. This bench
// drives the same churn (20k single-node corrections) against the paper
// testbed and a 4x-scaled one (testbed.Scaled(4), 3576 nodes): with the
// delta chain the per-update cost must not grow with testbed size, and
// archived versions stay readable afterwards.

func BenchmarkE13_RefAPIVersionChurn(b *testing.B) {
	const updates = 20000
	// churn returns wall ns and heap allocations per single-node Update.
	// The assertion rides on allocations: they are deterministic (wall time
	// at -benchtime=1x is at the mercy of GC cycles whose scan cost grows
	// with the larger testbed's live heap) and they are exactly what the
	// old full-snapshot Clone made O(total nodes) — ~2.7k allocs per update
	// at 1x, ~10.7k at 4x, versus a flat handful for the delta chain.
	churn := func(scale int) (float64, float64) {
		tb := testbed.Scaled(scale)
		st := refapi.NewStore(tb, 0)
		nodes := tb.Nodes()
		u := 0
		start := time.Now()
		allocs := testing.AllocsPerRun(updates-1, func() {
			n := nodes[(u*131)%len(nodes)]
			inv := n.Inv.Clone()
			inv.RAMGB = 8 + u%64
			if err := st.Update(simclock.Time(u+1)*simclock.Second, n.Name, inv); err != nil {
				b.Fatal(err)
			}
			u++
		})
		elapsed := time.Since(start)
		if st.VersionCount() != updates+1 {
			b.Fatalf("versions = %d, want %d", st.VersionCount(), updates+1)
		}
		// Archival queries still answer after churn (binary search + lazy
		// materialization).
		if s := st.At(simclock.Time(updates/2) * simclock.Second); s == nil || s.Version != updates/2+1 {
			b.Fatalf("At(mid-churn) = %v", s)
		}
		return float64(elapsed.Nanoseconds()) / updates, allocs
	}

	var ns1, ns4, al1, al4 float64
	for i := 0; i < b.N; i++ {
		ns1, al1 = churn(1)
		ns4, al4 = churn(4)
	}
	// O(total nodes) behaviour would make the 4x testbed allocate ~4x more
	// per update; the delta chain keeps the cost flat and tiny.
	if al4 > 2*al1 || al4 > 50 {
		b.Fatalf("per-update allocations grew with testbed size: %.1f at 1x vs %.1f at 4x", al1, al4)
	}
	b.ReportMetric(ns1, "ns_per_update_x1")
	b.ReportMetric(ns4, "ns_per_update_x4")
	b.ReportMetric(al1, "allocs_per_update_x1")
	b.ReportMetric(al4, "allocs_per_update_x4")
	b.ReportMetric(al4/al1, "scale_penalty_x4")
}

// ---- E15: API gateway throughput scaling (reproduction extension) -----------
//
// The unified gateway (internal/gateway) serves a finished one-week
// campaign to the loadgen scraper mix: conditional Reference API reads
// (almost all answered from the ETag/304 path), per-cluster resource
// listings and CI root reads, dispatched through the in-process transport
// so only the service code is measured. The reproduced result is
// requests/sec scaling from 1 to 4 client workers. Like E14, the gate
// normalises to the cores actually available: ≥3x at 4 workers on a
// ≥4-core machine, ≥60% parallel efficiency below that.

func BenchmarkE15_GatewayThroughput(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Seed = 15
	cfg.InitialFaults = 10
	cfg.EnvMatrixPeriod = 0
	f := core.New(cfg)
	f.Start()
	f.RunFor(simclock.Week)
	gw := gateway.ForFramework(f)
	var clusters []string
	for _, cl := range f.TB.Clusters()[:8] {
		clusters = append(clusters, cl.Name)
	}

	const iters = 1200
	run := func(workers int) *loadgen.Report {
		rep, err := loadgen.Run(loadgen.Config{
			Workers:  workers,
			Requests: iters,
			Mix:      loadgen.ScrapeOnlyMix(clusters),
			Seed:     1,
			NewClient: func(int) (*http.Client, string) {
				return inproc.Client(gw), "http://gateway.local"
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors != 0 {
			b.Fatalf("%d errors at %d workers", rep.Errors, workers)
		}
		return rep
	}
	// Best of two runs per worker count damps scheduler noise at
	// -benchtime=1x.
	best := func(workers int) *loadgen.Report {
		r1, r2 := run(workers), run(workers)
		if r2.Throughput > r1.Throughput {
			return r2
		}
		return r1
	}

	var rps1, rps4, speedup float64
	var hot *loadgen.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1 := best(1)
		r4 := best(4)
		rps1, rps4 = r1.Throughput, r4.Throughput
		speedup = rps4 / rps1
		hot = r4
		// Conditional Reference API reads must ride the 304 path: the mix
		// issues 2 conditional reads per iteration and only each worker's
		// first read of inventory and diff pays a full response (2 per
		// worker, 4 workers).
		if want := int64(2*iters - 2*4); hot.NotModified < want {
			b.Fatalf("only %d of ≥%d conditional reads hit 304", hot.NotModified, want)
		}
		ideal := min(4, runtime.GOMAXPROCS(0))
		required := 0.6 * float64(ideal)
		if ideal >= 4 {
			required = 3.0
		}
		if speedup < required {
			b.Fatalf("gateway throughput scaled %.2fx from 1→4 workers, need ≥%.1fx on this %d-core machine",
				speedup, required, runtime.GOMAXPROCS(0))
		}
	}
	b.ReportMetric(rps1, "iters_per_sec_x1")
	b.ReportMetric(rps4, "iters_per_sec_x4")
	b.ReportMetric(speedup, "speedup_x4")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(hot.NotModified), "hits_304")
	b.ReportMetric(float64(hot.Latency.P50.Microseconds()), "p50_us")
	b.ReportMetric(float64(hot.Latency.P99.Microseconds()), "p99_us")
}

// ---- E16: mixed production workload on the gateway (repro extension) --------
//
// The full loadgen mix — operator dashboards (status grid, trend, open
// bugs), API scrapers (conditional Reference API + resources) and
// submission-heavy tooling (dry-run probes through OAR's CanStartNow path
// plus real submissions) — against one gateway, 4 workers, with a
// background driver advancing the campaign underneath the whole time. The
// reproduced result is the workload completing error-free with every
// consumer population served, plus the latency spread and the
// p99-vs-lock-hold comparison: how much of the read tail is reads queued
// behind the advance's write-lock hold.

func BenchmarkE16_MixedWorkload(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Seed = 16
	cfg.InitialFaults = 15
	cfg.EnvMatrixPeriod = 0
	f := core.New(cfg)
	f.Start()
	f.RunFor(simclock.Week)
	gw := gateway.ForFramework(f)
	var clusters []string
	for _, cl := range f.TB.Clusters()[:8] {
		clusters = append(clusters, cl.Name)
	}

	const iters = 300
	var rep *loadgen.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance pressure: a background driver steps the campaign an hour
		// at a time while the workload runs, so the reported p99 is
		// measured against live write-lock churn. AdvanceLockStats then
		// says how long each advance actually held the shard write lock —
		// the p99-vs-lock-hold comparison below is the E16 investigation's
		// reproducible form.
		stop := make(chan struct{})
		advDone := make(chan struct{})
		go func() {
			defer close(advDone)
			for {
				select {
				case <-stop:
					return
				default:
					gw.Advance(simclock.Hour)
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
		var err error
		rep, err = loadgen.Run(loadgen.Config{
			Workers:  4,
			Requests: iters,
			Mix:      loadgen.DefaultMix(clusters),
			Seed:     2,
			NewClient: func(int) (*http.Client, string) {
				return inproc.Client(gw), "http://gateway.local"
			},
		})
		close(stop)
		<-advDone
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors != 0 {
			b.Fatalf("%d errors in mixed workload:\n%s", rep.Errors, rep)
		}
		for _, s := range rep.Scenarios {
			if s.Iterations == 0 {
				b.Fatalf("scenario %s never ran", s.Name)
			}
		}
	}
	m := gw.Metrics()
	if m.Endpoints["/oar/submit"].Requests == 0 || m.Endpoints["/status/grid"].Requests == 0 {
		b.Fatalf("endpoint coverage hole: %+v", m.Endpoints)
	}
	b.ReportMetric(rep.Throughput, "iters_per_sec")
	b.ReportMetric(float64(rep.HTTPRequests), "http_requests")
	b.ReportMetric(float64(rep.NotModified), "hits_304")
	b.ReportMetric(float64(rep.Latency.P50.Microseconds()), "p50_us")
	b.ReportMetric(float64(rep.Latency.P99.Microseconds()), "p99_us")
	// The p99 investigation's verdict: reads queue behind the advance's
	// write lock, so the read tail is bounded below by the longest hold.
	// On a monolithic gateway the whole campaign steps under one lock —
	// the per-cluster micro-shards (E21) shrink exactly this hold.
	lh := gw.AdvanceLockStats()
	b.ReportMetric(float64(lh.Steps), "advance_lock_steps")
	b.ReportMetric(lh.AvgMicros, "advance_lock_avg_us")
	b.ReportMetric(lh.MaxMicros, "advance_lock_max_us")
	if lh.MaxMicros > 0 {
		b.ReportMetric(float64(rep.Latency.P99.Microseconds())/lh.MaxMicros, "p99_over_lock_hold_x")
	}
	for _, s := range rep.Scenarios {
		b.ReportMetric(float64(s.Iterations), s.Name+"_iters")
	}
}

// ---- E17: federated campaign advance (reproduction extension) ----------------
//
// The campaign federated into per-cluster micro-shards (internal/federation):
// each cluster owns its OAR, monitor, CI, fault/operator processes and RNG
// stream under its site's label, and the federation steps them through
// weekly barriers. Three properties gate here:
//
//  1. determinism — stepping the 32 micro-shards serially or on 4 workers
//     yields bit-identical per-site and merged campaign summaries;
//  2. throughput — the parallel advance must be ≥2.5x the serial one at
//     4 shard workers on a ≥4-core machine (the uneven real site sizes —
//     nancy is ~2x luxembourg — cost part of the ideal 4x). Below 4 cores
//     the gate normalises to ≥62.5% parallel efficiency, like E14/E15;
//  3. read availability — while a site-B-only Advance holds B's shard
//     write lock, reads against site A keep completing through the
//     federated gateway's per-shard locks.

func BenchmarkE17_FederatedAdvance(b *testing.B) {
	const weeks = 2
	shardProfile := func(site string, seed int64) core.Config {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 10
		cfg.EnvMatrixPeriod = 0
		return cfg
	}
	run := func(workers int) (*federation.Federation, float64) {
		fed := federation.New(federation.Config{Seed: 17, Workers: workers, Configure: shardProfile})
		fed.Start()
		start := time.Now()
		fed.Advance(weeks * simclock.Week)
		return fed, time.Since(start).Seconds()
	}

	var speedup, eff float64
	var reads, shardCount int
	var merged federation.Summary
	for i := 0; i < b.N; i++ {
		fedS, t1 := run(1)
		fedP, t4 := run(4)
		shardCount = len(fedP.Shards())
		sumS, sumP := fedS.Summary(), fedP.Summary()
		merged = sumS
		if len(sumS.Sites) != 8 || len(sumP.Sites) != 8 {
			b.Fatalf("federation has %d/%d sites, want 8", len(sumS.Sites), len(sumP.Sites))
		}
		for k := range sumS.Sites {
			if sumS.Sites[k] != sumP.Sites[k] {
				b.Fatalf("site %s diverged between serial and parallel shard stepping:\nserial:   %+v\nparallel: %+v",
					sumS.Sites[k].Site, sumS.Sites[k].Summary, sumP.Sites[k].Summary)
			}
		}
		if sumS.Merged != sumP.Merged {
			b.Fatalf("merged summary diverged:\nserial:   %+v\nparallel: %+v", sumS.Merged, sumP.Merged)
		}
		if !reflect.DeepEqual(fedS.WeeklyReport(), fedP.WeeklyReport()) {
			b.Fatal("merged weekly reports diverged between serial and parallel stepping")
		}

		speedup = t1 / t4
		ideal := min(4, runtime.GOMAXPROCS(0))
		eff = speedup / float64(ideal)
		required := 0.625 * float64(ideal)
		if ideal >= 4 {
			required = 2.5
		}
		if speedup < required {
			b.Fatalf("federated advance scaled %.2fx at 4 shard workers, need ≥%.2fx on this %d-core machine",
				speedup, required, runtime.GOMAXPROCS(0))
		}

		// Read availability: site-A reads must complete while a site-B-only
		// advance is in flight behind B's shard write lock.
		gw := gateway.ForFederation(fedP)
		c := inproc.Client(gw)
		readA := func() {
			resp, err := c.Get("http://gw.local/sites/luxembourg/oar/resources")
			if err != nil {
				b.Fatalf("site-A read: %v", err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("site-A read status = %d", resp.StatusCode)
			}
		}
		readA() // warm path before the advance starts
		var done atomic.Bool
		advErr := make(chan error, 1)
		go func() {
			err := gw.AdvanceSite("nancy", simclock.Week)
			done.Store(true)
			advErr <- err
		}()
		reads = 0
		for !done.Load() {
			readA()
			reads++
		}
		if err := <-advErr; err != nil {
			b.Fatalf("AdvanceSite: %v", err)
		}
		if reads == 0 {
			b.Fatal("no site-A read completed while the site-B advance was in flight")
		}
	}
	if merged.Merged.Builds == 0 || merged.Merged.BugsFiled == 0 {
		b.Fatalf("federated campaign shape off: %+v", merged.Merged)
	}
	b.ReportMetric(speedup, "speedup_x4")
	b.ReportMetric(100*eff, "parallel_efficiency_pct")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(shardCount), "shards")
	b.ReportMetric(8, "sites")
	b.ReportMetric(float64(reads), "reads_during_advance")
	b.ReportMetric(float64(merged.Merged.Builds), "builds")
	b.ReportMetric(float64(merged.Merged.BugsFiled), "bugs_filed")
	b.ReportMetric(100*merged.Merged.FirstWeek.Rate(), "first_week_pct")
	b.ReportMetric(100*merged.Merged.LastWeek.Rate(), "last_week_pct")
}

// ---- E18: disaster availability (site-scale chaos) --------------------------
//
// The robustness gate over the chaos layer: a deterministic disaster
// schedule (site outage + WAN partition) must leave serial and parallel
// federated advances bit-identical, a live outage must cost the surviving
// sites no availability (merged and surviving routes keep serving; only the
// lost site answers 503-by-design with Retry-After), and healing must
// restore full service with the lost shard caught back up to lockstep.

func BenchmarkE18_DisasterAvailability(b *testing.B) {
	chaosSites := []string{"luxembourg", "nantes", "lyon", "sophia"}
	spec := func() []testbed.ClusterSpec {
		want := map[string]bool{}
		for _, s := range chaosSites {
			want[s] = true
		}
		var out []testbed.ClusterSpec
		for _, cs := range testbed.DefaultSpec {
			if want[cs.Site] {
				out = append(out, cs)
			}
		}
		return out
	}()
	shardProfile := func(site string, seed int64) core.Config {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 10
		cfg.EnvMatrixPeriod = 0
		return cfg
	}
	schedule := []faults.ScheduleEntry{
		{Kind: faults.SiteOutage, Sites: []string{"lyon"}, At: simclock.Week, Duration: simclock.Week},
		{Kind: faults.WANPartition, Sites: []string{"nantes"}, At: simclock.Week, Duration: 2 * simclock.Week},
	}
	runDisaster := func(workers int) *federation.Federation {
		fed := federation.New(federation.Config{
			Seed: 18, Workers: workers, Spec: spec, Configure: shardProfile,
		})
		fed.Start()
		if err := fed.ScheduleChaos(schedule...); err != nil {
			b.Fatalf("schedule: %v", err)
		}
		fed.Advance(3 * simclock.Week)
		return fed
	}

	var surviving, lost float64
	var tolerated int64
	for i := 0; i < b.N; i++ {
		// Phase 1 — fault-schedule determinism: the same disaster campaign,
		// stepped serially and on 4 shard workers, must be bit-identical
		// (frozen weeks, catch-up ticks, grid tickets and all).
		fedS, fedP := runDisaster(1), runDisaster(4)
		sumS, sumP := fedS.Summary(), fedP.Summary()
		for k := range sumS.Sites {
			if sumS.Sites[k] != sumP.Sites[k] {
				b.Fatalf("site %s diverged through the disaster:\nserial:   %+v\nparallel: %+v",
					sumS.Sites[k].Site, sumS.Sites[k], sumP.Sites[k])
			}
		}
		if sumS.Merged != sumP.Merged {
			b.Fatalf("merged summary diverged:\nserial:   %+v\nparallel: %+v", sumS.Merged, sumP.Merged)
		}
		if !reflect.DeepEqual(fedS.WeeklyReport(), fedP.WeeklyReport()) {
			b.Fatal("merged weekly reports diverged through the disaster")
		}
		for _, sh := range fedP.Shards() {
			if got := sh.F.Clock.Now(); got != 3*simclock.Week {
				b.Fatalf("site %s clock = %v after heal + catch-up, want %v", sh.Site, got, 3*simclock.Week)
			}
		}

		// Phase 2 — availability under a live outage: front a fresh
		// federation with the gateway, take lyon down, and drive the
		// disaster mix. Tolerated 503s (the lost site's by-design answers)
		// are split from real errors; surviving sites must serve ≥99%
		// without a single 503.
		fed := federation.New(federation.Config{
			Seed: 18, Workers: 4, Spec: spec, Configure: shardProfile,
		})
		fed.Start()
		gw := gateway.ForFederation(fed)
		gw.Advance(simclock.Week)
		ev, err := fed.InjectGrid(faults.SiteOutage, []string{"lyon"}, 0, 0)
		if err != nil {
			b.Fatalf("inject: %v", err)
		}
		// Micro-shards are per cluster; the load generator targets sites, so
		// fold each site's shards into one target.
		var targets []loadgen.SiteTarget
		siteIdx := map[string]int{}
		for _, sh := range fed.Shards() {
			ti, ok := siteIdx[sh.Site]
			if !ok {
				ti = len(targets)
				siteIdx[sh.Site] = ti
				targets = append(targets, loadgen.SiteTarget{Site: sh.Site})
			}
			for _, cl := range sh.F.TB.Clusters() {
				targets[ti].Clusters = append(targets[ti].Clusters, cl.Name)
			}
			if nodes := sh.F.TB.Nodes(); len(targets[ti].Nodes) == 0 && len(nodes) > 0 {
				targets[ti].Nodes = []string{nodes[0].Name}
			}
		}
		newClient := func(int) (*http.Client, string) { return inproc.Client(gw), "http://gw.local" }
		rep, err := loadgen.Run(loadgen.Config{
			Workers: 4, Requests: 400, Seed: 18,
			Mix: loadgen.DisasterMix(targets), NewClient: newClient,
		})
		if err != nil {
			b.Fatalf("loadgen: %v", err)
		}
		if rep.Errors != 0 {
			b.Fatalf("disaster run produced %d real errors (503-by-design should be tolerated)", rep.Errors)
		}
		av := rep.Availability()
		tolerated = av.Tolerated503
		if tolerated == 0 {
			b.Fatal("no tolerated 503s: the outage never reached the wire")
		}
		surviving, lost = 1, 0
		for _, site := range av.Sites {
			if site.Site == "lyon" {
				lost = site.Availability
				if site.Tolerated503 == 0 {
					b.Fatalf("lost site saw no 503s: %+v", site)
				}
				continue
			}
			if site.Availability < surviving {
				surviving = site.Availability
			}
			if site.Tolerated503 != 0 {
				b.Fatalf("surviving site %s answered %d × 503", site.Site, site.Tolerated503)
			}
		}
		if surviving < 0.99 {
			b.Fatalf("surviving-site availability %.4f, gate needs ≥0.99", surviving)
		}
		if lost < 0.99 {
			b.Fatalf("lost-site availability %.4f (503-by-design must not count as errors)", lost)
		}

		// Phase 3 — heal and full recovery: the lost shard catches up to
		// lockstep and a second run sees zero 503s anywhere.
		if _, err := fed.HealGrid(ev.ID); err != nil {
			b.Fatalf("heal: %v", err)
		}
		gw.Advance(simclock.Week)
		for _, sh := range fed.Shards() {
			if got := sh.F.Clock.Now(); got != 2*simclock.Week {
				b.Fatalf("site %s clock = %v after heal, want %v", sh.Site, got, 2*simclock.Week)
			}
		}
		rep, err = loadgen.Run(loadgen.Config{
			Workers: 4, Requests: 200, Seed: 19,
			Mix: loadgen.DisasterMix(targets), NewClient: newClient,
		})
		if err != nil {
			b.Fatalf("recovery loadgen: %v", err)
		}
		if rep.Errors != 0 || rep.Tolerated503 != 0 {
			b.Fatalf("recovery run: %d errors, %d × 503 (want 0, 0)", rep.Errors, rep.Tolerated503)
		}
		if fed.Degraded() {
			b.Fatal("federation still degraded after heal")
		}
	}
	b.ReportMetric(100*surviving, "surviving_availability_pct")
	b.ReportMetric(100*lost, "lost_site_availability_pct")
	b.ReportMetric(float64(tolerated), "tolerated_503")
	b.ReportMetric(float64(len(chaosSites)), "sites")
	b.ReportMetric(float64(len(schedule)), "grid_events")
}

// ---- E19: grid admission & overload shedding (robustness) -------------------
//
// The overload gate over the admission layer (internal/admit): unanchored
// submissions route through grid-level admission, and when open-loop
// traffic drives the grid past its capacity knee the layer must degrade
// by contract, not collapse. Three properties gate:
//
//  1. determinism — the same submission sequence, probed serially or with
//     the goroutine fan-out, yields a bit-identical placement trace
//     (status, site per request) and identical admission counters;
//  2. bounded overload — past the knee the reservation queue never grows
//     beyond its cap, load is shed with 429, ≥99% of sheds carry
//     Retry-After, and nothing surfaces as a real error;
//  3. admitted latency — at a fixed fraction of grid capacity every
//     request places immediately and p99 (measured open-loop from the
//     scheduled arrival, so queueing cannot hide) stays under 250ms.

func BenchmarkE19_OverloadShedding(b *testing.B) {
	admitSites := map[string]bool{"luxembourg": true, "nantes": true}
	var spec []testbed.ClusterSpec
	for _, cs := range testbed.DefaultSpec {
		if admitSites[cs.Site] {
			spec = append(spec, cs)
		}
	}
	shardProfile := func(site string, seed int64) core.Config {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 0
		cfg.EnvMatrixPeriod = 0
		return cfg
	}
	newGrid := func(queueCap int, scatter func([]func())) (*federation.Federation, *gateway.Gateway) {
		fed := federation.New(federation.Config{
			Seed: 19, Workers: 4, Spec: spec, Configure: shardProfile,
		})
		fed.Start()
		gw := gateway.ForFederation(fed)
		gw.Advance(simclock.Hour)
		policy := sched.DefaultGridPolicy()
		gw.EnableAdmission(admit.Config{
			Now: fed.Now, Policy: &policy, QueueCap: queueCap, Scatter: scatter,
		})
		return fed, gw
	}
	serialScatter := func(tasks []func()) {
		for _, t := range tasks {
			t()
		}
	}
	submit := func(c *http.Client, body string) (int, gateway.SubmitResponse) {
		resp, err := c.Post("http://gw.local/oar/submit", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		defer resp.Body.Close()
		var sub gateway.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			b.Fatalf("submit decode: %v", err)
		}
		return resp.StatusCode, sub
	}

	var stats admit.StatsJSON
	var hintedPct, offered, achieved, p99Admitted float64
	var gridNodes int
	for i := 0; i < b.N; i++ {
		// Phase 1 — placement determinism: the same 140-submission sequence
		// (small demands that place and drain capacity, oversized ones that
		// queue) through serial and parallel probing must leave identical
		// traces and identical counters. Placement is a pure function of the
		// gathered probe slots; the fan-out must not change a single routing.
		trace := func(scatter func([]func())) ([]string, admit.StatsJSON) {
			_, gw := newGrid(0, scatter)
			c := inproc.Client(gw)
			out := make([]string, 0, 140)
			for n := 0; n < 140; n++ {
				nodes := 1 + n%5
				if n%17 == 0 {
					nodes = 999 // startable nowhere: exercises the queue path
				}
				code, sub := submit(c, fmt.Sprintf(`{"request":"nodes=%d,walltime=12","user":"e19"}`, nodes))
				out = append(out, fmt.Sprintf("%d:%s:%s", code, sub.Admission, sub.Site))
			}
			return out, gw.Admission().Stats()
		}
		traceS, statsS := trace(serialScatter)
		traceP, statsP := trace(nil) // nil = the gateway's goroutine fan-out
		if !reflect.DeepEqual(traceS, traceP) {
			for k := range traceS {
				if traceS[k] != traceP[k] {
					b.Fatalf("placement %d diverged: serial %s, parallel %s", k, traceS[k], traceP[k])
				}
			}
		}
		if statsS != statsP {
			b.Fatalf("admission counters diverged:\nserial:   %+v\nparallel: %+v", statsS, statsP)
		}

		// Phase 2 — overload shedding: open-loop arrivals far past what the
		// grid can absorb (every placement holds its nodes for 12 simulated
		// hours and nothing advances, so capacity only drains). The queue
		// must stay within its cap, the excess must shed as 429 with
		// Retry-After, and none of it may count as a real error.
		fed, gw := newGrid(16, nil)
		gridNodes = 0
		for _, sh := range fed.Shards() {
			gridNodes += sh.F.TB.TotalNodes()
		}
		newClient := func(int) (*http.Client, string) { return inproc.Client(gw), "http://gw.local" }
		mixFor := func(accept ...int) []loadgen.Scenario {
			return []loadgen.Scenario{{Name: "grid-submit", Weight: 1, Run: func(c *loadgen.Ctx) error {
				return c.PostJSONAccept("/oar/submit", `{"request":"nodes=4,walltime=12","user":"e19"}`, accept...)
			}}}
		}
		olr, err := loadgen.RunOpenLoop(loadgen.OpenLoopConfig{
			Rate: 3000, Requests: 500, Workers: 4, Seed: 19, JitterFrac: 0.2,
			Mix: mixFor(http.StatusTooManyRequests), NewClient: newClient,
		})
		if err != nil {
			b.Fatalf("overload run: %v", err)
		}
		stats = gw.Admission().Stats()
		if olr.Errors != 0 {
			b.Fatalf("overload run surfaced %d real errors (sheds must be 429-by-contract)", olr.Errors)
		}
		if stats.Placed == 0 || stats.Shed == 0 {
			b.Fatalf("knee not crossed: %+v", stats)
		}
		if stats.MaxDepth > stats.Capacity {
			b.Fatalf("queue grew to %d past its cap of %d", stats.MaxDepth, stats.Capacity)
		}
		if olr.Tolerated429 != stats.Shed {
			b.Fatalf("wire saw %d × 429, controller shed %d", olr.Tolerated429, stats.Shed)
		}
		if 100*olr.Hinted429 < 99*olr.Tolerated429 {
			b.Fatalf("only %d of %d sheds carried Retry-After, gate needs ≥99%%", olr.Hinted429, olr.Tolerated429)
		}
		hintedPct = 100 * float64(olr.Hinted429) / float64(olr.Tolerated429)
		offered, achieved = olr.OfferedRate, olr.AchievedRate

		// Phase 3 — admitted latency: a fresh grid offered demand for half
		// its free capacity (the campaign's own jobs hold some nodes) at a
		// modest rate. Everything must place immediately (no queue, no shed)
		// and p99 — charged from the scheduled arrival, the
		// coordinated-omission-safe measure — stays under 250ms.
		fed3, gw3 := newGrid(0, nil)
		gw = gw3
		free := 0
		for _, sh := range fed3.Shards() {
			free += sh.F.TB.TotalNodes() - sh.F.OAR.BusyNodes()
		}
		newClient = func(int) (*http.Client, string) { return inproc.Client(gw), "http://gw.local" }
		admitN := free / 2 / 4 // nodes=4 per request → half the free capacity
		rep, err := loadgen.RunOpenLoop(loadgen.OpenLoopConfig{
			Rate: 400, Requests: admitN, Workers: 4, Seed: 20, JitterFrac: 0.2,
			Mix: mixFor(), NewClient: newClient,
		})
		if err != nil {
			b.Fatalf("admitted run: %v", err)
		}
		ast := gw.Admission().Stats()
		if rep.Errors != 0 || ast.Queued != 0 || ast.Shed != 0 || ast.Placed != int64(admitN) {
			b.Fatalf("half-capacity demand did not all place: %d errors, %+v", rep.Errors, ast)
		}
		p99Admitted = float64(rep.Latency.P99.Microseconds())
		if rep.Latency.P99 > 250*time.Millisecond {
			b.Fatalf("admitted p99 = %v, gate needs ≤250ms", rep.Latency.P99)
		}
	}
	b.ReportMetric(float64(gridNodes), "grid_nodes")
	b.ReportMetric(float64(stats.Placed), "placed")
	b.ReportMetric(float64(stats.Queued), "queued")
	b.ReportMetric(float64(stats.Shed), "shed_429")
	b.ReportMetric(float64(stats.MaxDepth), "queue_max_depth")
	b.ReportMetric(float64(stats.Capacity), "queue_cap")
	b.ReportMetric(hintedPct, "retry_after_pct")
	b.ReportMetric(offered, "offered_rps")
	b.ReportMetric(achieved, "achieved_rps")
	b.ReportMetric(p99Admitted, "admitted_p99_us")
}

// ---- E20: grid intelligence (archive determinism & incident rollup) ---------
//
// The gate over the grid intelligence layer (internal/intel) as served by
// the gateway. Three properties:
//
//  1. federated time-travel determinism — the same disaster campaign
//     (outage + WAN partition on the E18 schedule), stepped serially and
//     on 4 shard workers, must serve bit-identical /grid/at, /grid/diff,
//     /incidents and /bugs/rollup bodies for every probed instant: frozen
//     weeks and catch-up ticks must not leak into the archive;
//  2. conditional-request economics — hot conditional /grid/at re-reads
//     answer 304 and unconditional re-reads serve the cached body while
//     the summed per-store materialization counters stay flat, so a
//     historical read costs one binary search per site, not a snapshot
//     rebuild;
//  3. incident-rollup stability — the outage's ticket burst (one ticket
//     per surviving shard, same signature) folds into exactly one
//     incident spanning those sites, with one ticket per affected site.

func BenchmarkE20_GridIntelligence(b *testing.B) {
	chaosSites := []string{"luxembourg", "nantes", "lyon", "sophia"}
	spec := func() []testbed.ClusterSpec {
		want := map[string]bool{}
		for _, s := range chaosSites {
			want[s] = true
		}
		var out []testbed.ClusterSpec
		for _, cs := range testbed.DefaultSpec {
			if want[cs.Site] {
				out = append(out, cs)
			}
		}
		return out
	}()
	shardProfile := func(site string, seed int64) core.Config {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 10
		cfg.EnvMatrixPeriod = 0
		return cfg
	}
	schedule := []faults.ScheduleEntry{
		{Kind: faults.SiteOutage, Sites: []string{"lyon"}, At: simclock.Week, Duration: simclock.Week},
		{Kind: faults.WANPartition, Sites: []string{"nantes"}, At: simclock.Week, Duration: 2 * simclock.Week},
	}
	runIntel := func(workers int) (*federation.Federation, *gateway.Gateway) {
		fed := federation.New(federation.Config{
			Seed: 20, Workers: workers, Spec: spec, Configure: shardProfile,
		})
		fed.Start()
		if err := fed.ScheduleChaos(schedule...); err != nil {
			b.Fatalf("schedule: %v", err)
		}
		gw := gateway.ForFederation(fed)
		gw.Advance(3 * simclock.Week)
		return fed, gw
	}
	fetch := func(c *http.Client, path string) (string, []byte) {
		resp, err := c.Get("http://gw.local" + path)
		if err != nil {
			b.Fatalf("GET %s: %v", path, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s: status %d (read err %v): %s", path, resp.StatusCode, rerr, body)
		}
		return resp.Header.Get("ETag"), body
	}
	conditional := func(c *http.Client, path, etag string) int {
		req, _ := http.NewRequest(http.MethodGet, "http://gw.local"+path, nil)
		req.Header.Set("If-None-Match", etag)
		resp, err := c.Do(req)
		if err != nil {
			b.Fatalf("conditional GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	var versions, hot304, incidentCount, outageSites float64
	for i := 0; i < b.N; i++ {
		// Phase 1 — serial ≡ parallel: every intel body bit-identical.
		_, gwS := runIntel(1)
		fedP, gwP := runIntel(4)
		cS, cP := inproc.Client(gwS), inproc.Client(gwP)
		probes := []string{
			"/grid/at?t=302400",  // mid week 1: whole grid, pre-disaster
			"/grid/at?t=907200",  // mid week 2: lyon frozen, nantes cut
			"/grid/at?t=1814400", // week 3 barrier: healed and caught up
			"/grid/diff?from=302400&to=1814400",
			"/incidents?state=all",
			"/incidents?at=1209600",
			"/bugs/rollup?state=all",
		}
		for _, p := range probes {
			etagS, bodyS := fetch(cS, p)
			etagP, bodyP := fetch(cP, p)
			if etagS != etagP || !bytes.Equal(bodyS, bodyP) {
				b.Fatalf("%s diverged between serial and parallel stepping:\nserial:   %s %d bytes\nparallel: %s %d bytes",
					p, etagS, len(bodyS), etagP, len(bodyP))
			}
		}

		// Phase 2 — hot-304 economics on the parallel gateway: conditional
		// and cached re-reads must not materialize a single snapshot.
		sumMats := func() int64 {
			var n int64
			for _, sh := range fedP.Shards() {
				n += sh.F.Ref.Materializations()
			}
			return n
		}
		etag, _ := fetch(cP, "/grid/at?t=907200") // body + caches warm
		mats := sumMats()
		hot304 = 0
		for j := 0; j < 50; j++ {
			if code := conditional(cP, "/grid/at?t=907200", etag); code != http.StatusNotModified {
				b.Fatalf("conditional /grid/at read %d: status %d, want 304", j, code)
			}
			hot304++
		}
		for j := 0; j < 25; j++ {
			fetch(cP, "/grid/at?t=907200")
		}
		if got := sumMats(); got != mats {
			b.Fatalf("hot /grid/at reads re-materialized snapshots: %d → %d", mats, got)
		}
		versions = 0
		for _, sh := range fedP.Shards() {
			versions += float64(sh.F.Ref.VersionCount())
		}

		// Phase 3 — the outage burst folds: one signature filed at every
		// surviving shard is exactly one incident spanning those sites.
		_, body := fetch(cP, "/incidents?state=all")
		var inc gateway.IncidentsJSON
		if err := json.Unmarshal(body, &inc); err != nil {
			b.Fatalf("/incidents body: %v", err)
		}
		rows := 0
		var outage gateway.IncidentJSON
		for _, in := range inc.Incidents {
			if in.Signature == "site-outage:lyon" {
				rows++
				outage = in
			}
		}
		if rows != 1 {
			b.Fatalf("outage burst folded into %d incidents, want exactly 1", rows)
		}
		if len(outage.Sites) < 2 {
			b.Fatalf("outage incident spans %v, want ≥2 sites", outage.Sites)
		}
		if outage.Tickets != len(outage.Sites) {
			b.Fatalf("outage incident: %d tickets across %d sites, want one per site",
				outage.Tickets, len(outage.Sites))
		}
		for _, s := range outage.Sites {
			if s == "lyon" {
				b.Fatal("the lost site carries its own outage ticket")
			}
		}
		incidentCount = float64(inc.Count)
		outageSites = float64(len(outage.Sites))
	}
	b.ReportMetric(versions, "archived_versions")
	b.ReportMetric(hot304, "hot_304_reads")
	b.ReportMetric(incidentCount, "incidents")
	b.ReportMetric(outageSites, "outage_sites")
	b.ReportMetric(float64(len(chaosSites)), "sites")
	b.ReportMetric(float64(len(schedule)), "grid_events")
}

// ---- E21: balanced micro-sharding with work-stealing barriers ---------------
//
// The tentpole gate of the micro-shard refactor: at 16x grid scale
// (testbed.Scaled(16): 8 sites carved into 512 per-cluster micro-shards,
// ~14k nodes) the barrier's critical path must be the mean micro-shard,
// not the max site. Three properties gate:
//
//  1. equivalence — serial stepping, the work-stealing schedule at 8
//     workers, and the legacy whole-site-per-worker schedule all yield
//     bit-identical per-site and merged summaries at 16x (micro-sharding
//     must not move a single RNG draw);
//  2. efficiency — ≥90% parallel-advance efficiency at 8 workers,
//     normalised to min(8, GOMAXPROCS) like E14/E15 (on a single-core
//     runner the gate degenerates to "work-stealing costs nothing");
//  3. scaling — the sweep over Scaled(4/8/16) reports per-scale
//     efficiency so super-linear slowdowns show up as reviewable diffs.
//
// The breakdown locates the next bottleneck: barrier_wait_ms is the total
// worker idle implied by the makespan beyond perfectly-divided work,
// merge_ms the scatter-gather weekly-report merge, shard_step_ms the mean
// per-micro-shard step, and critical_path_shrink_x how much shorter the
// largest schedulable unit got when sites were carved into clusters.

func BenchmarkE21_BalancedAdvance(b *testing.B) {
	shardProfile := func(site string, seed int64) core.Config {
		cfg := core.DefaultConfig()
		cfg.InitialFaults = 4
		cfg.EnvMatrixPeriod = 0
		return cfg
	}
	run := func(scale, workers int, siteGrouped bool) (*federation.Federation, float64) {
		fed := federation.New(federation.Config{
			Seed: 21, Workers: workers, SiteGrouped: siteGrouped,
			Spec: testbed.ScaledSpec(scale), Configure: shardProfile,
		})
		fed.Start()
		start := time.Now()
		fed.Advance(simclock.Week)
		return fed, time.Since(start).Seconds()
	}

	ideal := min(8, runtime.GOMAXPROCS(0))
	var eff, speedup, t1x16, t8x16, tLegacy, mergeSec, shrink float64
	var shardCount int
	effAt := map[int]float64{}
	for i := 0; i < b.N; i++ {
		// The scale sweep: serial vs 8 work-stealing workers at 4x and 8x.
		for _, scale := range []int{4, 8} {
			_, ts := run(scale, 1, false)
			_, tp := run(scale, 8, false)
			effAt[scale] = (ts / tp) / float64(ideal)
		}

		// The 16x gate: serial, work-stealing and legacy site-grouped.
		fedS, ts := run(16, 1, false)
		fedW, tw := run(16, 8, false)
		fedL, tl := run(16, 8, true)
		t1x16, t8x16, tLegacy = ts, tw, tl
		shardCount = len(fedW.Shards())

		sumS, sumW, sumL := fedS.Summary(), fedW.Summary(), fedL.Summary()
		for k := range sumS.Sites {
			if sumS.Sites[k] != sumW.Sites[k] || sumS.Sites[k] != sumL.Sites[k] {
				b.Fatalf("site %s diverged between serial, work-stealing and site-grouped stepping:\nserial:       %+v\nwork-steal:   %+v\nsite-grouped: %+v",
					sumS.Sites[k].Site, sumS.Sites[k], sumW.Sites[k], sumL.Sites[k])
			}
		}
		if sumS.Merged != sumW.Merged || sumS.Merged != sumL.Merged {
			b.Fatal("merged summary diverged across schedules at 16x")
		}
		mergeStart := time.Now()
		wr := fedW.WeeklyReport()
		mergeSec = time.Since(mergeStart).Seconds()
		if !reflect.DeepEqual(fedS.WeeklyReport(), wr) || !reflect.DeepEqual(fedL.WeeklyReport(), wr) {
			b.Fatal("merged weekly reports diverged across schedules at 16x")
		}
		if sumW.Merged.Builds == 0 || sumW.Merged.BugsFiled == 0 {
			b.Fatalf("16x campaign shape off: %+v", sumW.Merged)
		}

		speedup = ts / tw
		eff = speedup / float64(ideal)
		if eff < 0.9 {
			b.Fatalf("work-stealing advance ran at %.1f%% parallel efficiency at 8 workers (%.2fx vs %dx ideal on this %d-core machine), gate needs ≥90%%",
				100*eff, speedup, ideal, runtime.GOMAXPROCS(0))
		}

		// Critical path: the largest schedulable unit shrank from the
		// biggest site to the biggest cluster micro-shard.
		siteNodes := map[string]int{}
		maxShard := 0
		for _, sh := range fedW.Shards() {
			siteNodes[sh.Site] += sh.Nodes
			if sh.Nodes > maxShard {
				maxShard = sh.Nodes
			}
		}
		maxSite := 0
		for _, n := range siteNodes {
			if n > maxSite {
				maxSite = n
			}
		}
		shrink = float64(maxSite) / float64(maxShard)
	}

	barrierWaitMs := (float64(ideal)*t8x16 - t1x16) * 1000
	if barrierWaitMs < 0 {
		barrierWaitMs = 0
	}
	mergeMs := mergeSec * 1000
	shardStepMs := t1x16 * 1000 / float64(shardCount)
	bottleneck := "barrier wait"
	if mergeMs > barrierWaitMs && mergeMs > shardStepMs {
		bottleneck = "scatter-gather merge"
	} else if shardStepMs > barrierWaitMs {
		bottleneck = "per-shard OAR step"
	}
	b.Logf("next bottleneck: %s (barrier wait %.1fms, merge %.1fms, mean shard step %.1fms)",
		bottleneck, barrierWaitMs, mergeMs, shardStepMs)

	b.ReportMetric(speedup, "speedup_x8")
	b.ReportMetric(100*eff, "parallel_efficiency_pct")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(shardCount), "shards")
	b.ReportMetric(100*effAt[4], "eff_pct_scale4")
	b.ReportMetric(100*effAt[8], "eff_pct_scale8")
	b.ReportMetric(t1x16*1000, "advance_serial_ms")
	b.ReportMetric(t8x16*1000, "advance_ws_ms")
	b.ReportMetric(tLegacy*1000, "advance_sitegrouped_ms")
	b.ReportMetric(barrierWaitMs, "barrier_wait_ms")
	b.ReportMetric(mergeMs, "merge_ms")
	b.ReportMetric(shardStepMs, "shard_step_ms")
	b.ReportMetric(shrink, "critical_path_shrink_x")
}
