// Ablation benchmarks for the reproduction's central design choices: each
// one compares the paper's mechanism against the obvious alternative and
// reports both sides as metrics.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/ci"
	"repro/internal/oar"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/testbed"
)

// contendedFixture builds an OAR+CI pair over the default testbed with a
// configurable user workload on one cluster.
type contendedFixture struct {
	clock *simclock.Clock
	tb    *testbed.Testbed
	oar   *oar.Server
	ci    *ci.Server
}

func newFixture(seed int64) *contendedFixture {
	f := &contendedFixture{clock: simclock.New(seed), tb: testbed.Default()}
	f.oar = oar.NewServer(f.clock, f.tb)
	f.ci = ci.NewServer(f.clock, 8)
	return f
}

// staggeredLoad runs n independent user streams against the cluster, each
// repeatedly holding `nodes` nodes for ~5 h then sleeping ~3 h. Streams
// drift out of phase, so individual nodes are regularly free while the
// whole cluster almost never is — the situation of slide 16 ("waiting for
// all nodes of a given cluster to be available can take weeks").
func (f *contendedFixture) staggeredLoad(cluster string, n, nodes int, gapMean simclock.Time) {
	for i := 0; i < n; i++ {
		var arm func()
		arm = func() {
			req := fmt.Sprintf("cluster='%s'/nodes=%d,walltime=5", cluster, nodes)
			f.oar.Submit(req, oar.SubmitOptions{User: "user"})
			sleep := 5*simclock.Hour + simclock.Exponential(f.clock.Rand(), gapMean)
			f.clock.After(sleep, arm)
		}
		phase := simclock.Time(i) * 2 * simclock.Hour
		f.clock.After(phase, arm)
	}
}

// testJob installs a CI job running the paper's immediate-submit protocol
// for the given request, and returns a counter of completed runs.
func (f *contendedFixture) testJob(name, request string, runs *int) {
	f.ci.CreateJob(&ci.Job{Name: name, Script: func(bc *ci.BuildContext) ci.Outcome {
		j, _ := f.oar.Submit(request, oar.SubmitOptions{User: "jenkins", Immediate: true})
		if j.State != oar.Running {
			return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
		}
		f.clock.After(30*simclock.Minute, func() {
			if f.oar.Job(j.ID).State == oar.Running {
				f.oar.Release(j.ID) //nolint:errcheck
			}
		})
		*runs++
		return ci.Outcome{Result: ci.Success, Duration: 30 * simclock.Minute}
	}})
}

// BenchmarkAblation_PerNodeScheduling addresses the paper's open question
// (slide 23): hardware tests currently need ALL nodes of a cluster at once;
// would per-node scheduling cover the cluster faster? We measure the
// simulated days until every node of a contended 20-node cluster has been
// disk-tested once, both ways.
func BenchmarkAblation_PerNodeScheduling(b *testing.B) {
	const cluster, clusterSize = "sol", 20
	const horizon = 45 * simclock.Day

	runWhole := func(seed int64) float64 {
		f := newFixture(seed)
		f.staggeredLoad(cluster, 3, 7, 3*simclock.Hour)
		done := simclock.Time(-1)
		runs := 0
		f.testJob("disk", "cluster='"+cluster+"'/nodes=ALL,walltime=1", &runs)
		s := sched.New(f.clock, f.oar, f.ci, sched.DefaultConfig())
		s.Register(&sched.Spec{Name: "disk", JobName: "disk", Cluster: cluster,
			Site: "sophia", Kind: sched.HardwareCentric,
			Request: "cluster='" + cluster + "'/nodes=ALL,walltime=1",
			Period:  10 * horizon})
		s.Start()
		for done < 0 && f.clock.Now() < horizon {
			f.clock.RunFor(simclock.Hour)
			if runs > 0 {
				done = f.clock.Now()
			}
		}
		s.Stop()
		if done < 0 {
			done = horizon
		}
		return done.Duration().Hours() / 24
	}

	runPerNode := func(seed int64) float64 {
		f := newFixture(seed)
		f.staggeredLoad(cluster, 3, 7, 3*simclock.Hour)
		cfg := sched.DefaultConfig()
		cfg.MaxActivePerSite = 4           // per-node tests are small; allow a few at once
		cfg.BackoffMax = 2 * simclock.Hour // probing one node is cheap; stay responsive
		s := sched.New(f.clock, f.oar, f.ci, cfg)
		counters := make([]int, clusterSize)
		for i := 1; i <= clusterSize; i++ {
			node := fmt.Sprintf("%s-%d.sophia", cluster, i)
			req := fmt.Sprintf("host='%s'/nodes=1,walltime=1", node)
			name := "disk-" + node
			f.testJob(name, req, &counters[i-1])
			s.Register(&sched.Spec{Name: name, JobName: name, Cluster: cluster,
				Site: "sophia", Kind: sched.SoftwareCentric, Request: req,
				Period: 10 * horizon})
		}
		s.Start()
		done := simclock.Time(-1)
		for done < 0 && f.clock.Now() < horizon {
			f.clock.RunFor(simclock.Hour)
			covered := 0
			for _, c := range counters {
				if c > 0 {
					covered++
				}
			}
			if covered == clusterSize {
				done = f.clock.Now()
			}
		}
		s.Stop()
		if done < 0 {
			done = horizon
		}
		return done.Duration().Hours() / 24
	}

	// Contention patterns are seed-sensitive; average a fixed seed panel so
	// the reported comparison is stable whatever b.N is.
	const seeds = 5
	var wholeDays, perNodeDays float64
	for i := 0; i < b.N; i++ {
		wholeDays, perNodeDays = 0, 0
		for s := int64(1); s <= seeds; s++ {
			wholeDays += runWhole(s)
			perNodeDays += runPerNode(s)
		}
		wholeDays /= seeds
		perNodeDays /= seeds
	}
	if perNodeDays >= wholeDays {
		b.Fatalf("per-node (%.1f d) not faster than whole-cluster (%.1f d) on the seed panel",
			perNodeDays, wholeDays)
	}
	b.ReportMetric(wholeDays, "whole_cluster_days")
	b.ReportMetric(perNodeDays, "per_node_days")
}

// BenchmarkAblation_Backoff compares exponential backoff against a fixed
// 30-minute retry while a cluster stays busy for five straight days: how
// many availability probes does each policy waste, and how much later does
// the exponential policy run the test once resources free up?
func BenchmarkAblation_Backoff(b *testing.B) {
	run := func(seed int64, expo bool) (probes int, firstRunDay float64) {
		f := newFixture(seed)
		// 28 of helios' 30 nodes pinned for 5 days, then released.
		f.oar.Submit("cluster='helios'/nodes=28,walltime=120", oar.SubmitOptions{User: "user"})
		cfg := sched.DefaultConfig()
		cfg.AvoidPeak = false // isolate the backoff policy
		if !expo {
			cfg.BackoffMax = cfg.BackoffBase // fixed interval
		}
		runs := 0
		f.testJob("t", "cluster='helios'/nodes=ALL,walltime=1", &runs)
		s := sched.New(f.clock, f.oar, f.ci, cfg)
		s.Register(&sched.Spec{Name: "t", JobName: "t", Cluster: "helios",
			Site: "sophia", Kind: sched.HardwareCentric,
			Request: "cluster='helios'/nodes=ALL,walltime=1", Period: 60 * simclock.Day})
		s.Start()
		firstRunDay = -1
		for firstRunDay < 0 && f.clock.Now() < 8*simclock.Day {
			f.clock.RunFor(simclock.Hour)
			if runs > 0 {
				firstRunDay = f.clock.Now().Duration().Hours() / 24
			}
		}
		s.Stop()
		counts := s.DecisionCounts()
		probes = counts[sched.ActionDeferResources] + counts[sched.ActionTriggered]
		return probes, firstRunDay
	}
	var expoProbes, fixedProbes int
	var expoDay, fixedDay float64
	for i := 0; i < b.N; i++ {
		expoProbes, expoDay = run(int64(i)+1, true)
		fixedProbes, fixedDay = run(int64(i)+1, false)
	}
	if expoProbes >= fixedProbes {
		b.Fatalf("backoff (%d probes) not cheaper than fixed retry (%d)", expoProbes, fixedProbes)
	}
	b.ReportMetric(float64(expoProbes), "expo_probes")
	b.ReportMetric(float64(fixedProbes), "fixed_probes")
	b.ReportMetric(expoDay, "expo_first_run_day")
	b.ReportMetric(fixedDay, "fixed_first_run_day")
}

// BenchmarkAblation_MatrixRetry compares Matrix Reloaded (retry only the
// failed cells) with a naive full re-run of the matrix until everything is
// green, counting cell executions (node-hours burnt on the testbed).
func BenchmarkAblation_MatrixRetry(b *testing.B) {
	// A flaky matrix: each cell fails with 20 % probability, independently,
	// until it has succeeded once.
	mkServer := func(seed int64) (*simclock.Clock, *ci.Server) {
		clock := simclock.New(seed)
		s := ci.NewServer(clock, 64)
		passed := map[string]bool{}
		s.CreateJob(&ci.Job{
			Name: "m",
			Axes: []ci.Axis{
				{Name: "image", Values: axisValues("img", 14)},
				{Name: "cluster", Values: axisValues("cl", 32)},
			},
			Retention: 10000,
			Script: func(bc *ci.BuildContext) ci.Outcome {
				key := bc.Axis("image") + "/" + bc.Axis("cluster")
				if !passed[key] && clock.Rand().Float64() < 0.2 {
					return ci.Outcome{Result: ci.Failure, Duration: 5 * simclock.Minute}
				}
				passed[key] = true
				return ci.Outcome{Result: ci.Success, Duration: 5 * simclock.Minute}
			},
		})
		return clock, s
	}

	runReloaded := func(seed int64) int {
		clock, s := mkServer(seed)
		parent, _ := s.Trigger("m", "bench")
		clock.Run()
		cells := len(parent.CellBuilds)
		for round := 0; round < 10 && parent.Result != ci.Success; round++ {
			parent, _ = s.RetryFailedCells("m", parent.Number, "retry")
			clock.Run()
			cells += len(parent.CellBuilds)
		}
		return cells
	}
	runFull := func(seed int64) int {
		clock, s := mkServer(seed)
		cells := 0
		var parent *ci.Build
		for round := 0; round < 10; round++ {
			parent, _ = s.Trigger("m", "bench")
			clock.Run()
			cells += len(parent.CellBuilds)
			if parent.Result == ci.Success {
				break
			}
		}
		return cells
	}

	var reloaded, full int
	for i := 0; i < b.N; i++ {
		reloaded = runReloaded(int64(i) + 1)
		full = runFull(int64(i) + 1)
	}
	if reloaded >= full {
		b.Fatalf("matrix reloaded (%d cells) not cheaper than full re-runs (%d)", reloaded, full)
	}
	b.ReportMetric(float64(reloaded), "reloaded_cells")
	b.ReportMetric(float64(full), "full_rerun_cells")
}

func axisValues(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i)
	}
	return out
}

// BenchmarkAblation_CancelPolicy compares the paper's whole protocol
// (external scheduler pre-check + immediate-or-cancel submission) against
// what it replaced — plain Jenkins time-based scheduling where the build
// submits a normal OAR job and *blocks on its executor* until the job
// starts (slide 16: "it would use a Jenkins worker"). We measure
// executor-hours consumed per completed test run over a contended week.
func BenchmarkAblation_CancelPolicy(b *testing.B) {
	const cluster = "uvb" // 20 nodes
	const wait = 12 * simclock.Hour

	runPaper := func(seed int64) (execHours, runs float64) {
		f := newFixture(seed)
		f.staggeredLoad(cluster, 2, 7, 6*simclock.Hour)
		var busy simclock.Time
		completed := 0
		f.ci.CreateJob(&ci.Job{Name: "t", Script: func(bc *ci.BuildContext) ci.Outcome {
			j, _ := f.oar.Submit("cluster='"+cluster+"'/nodes=ALL,walltime=1",
				oar.SubmitOptions{User: "jenkins", Immediate: true})
			if j.State != oar.Running {
				busy += simclock.Minute
				return ci.Outcome{Result: ci.Unstable, Duration: simclock.Minute}
			}
			f.clock.After(30*simclock.Minute, func() {
				if f.oar.Job(j.ID).State == oar.Running {
					f.oar.Release(j.ID) //nolint:errcheck
				}
			})
			busy += 30 * simclock.Minute
			completed++
			return ci.Outcome{Result: ci.Success, Duration: 30 * simclock.Minute}
		}})
		cfg := sched.DefaultConfig()
		cfg.AvoidPeak = false // isolate the cancellation protocol
		s := sched.New(f.clock, f.oar, f.ci, cfg)
		s.Register(&sched.Spec{Name: "t", JobName: "t", Cluster: cluster,
			Site: "sophia", Kind: sched.HardwareCentric,
			Request: "cluster='" + cluster + "'/nodes=ALL,walltime=1",
			Period:  simclock.Day})
		s.Start()
		f.clock.RunFor(simclock.Week)
		s.Stop()
		return busy.Duration().Hours(), float64(completed)
	}

	runCron := func(seed int64) (execHours, runs float64) {
		f := newFixture(seed)
		f.staggeredLoad(cluster, 2, 7, 6*simclock.Hour)
		var busy simclock.Time
		completed := 0
		f.ci.CreateJob(&ci.Job{Name: "t", Script: func(bc *ci.BuildContext) ci.Outcome {
			j, _ := f.oar.Submit("cluster='"+cluster+"'/nodes=ALL,walltime=1",
				oar.SubmitOptions{User: "jenkins"})
			if j.State == oar.Running {
				f.clock.After(30*simclock.Minute, func() {
					if f.oar.Job(j.ID).State == oar.Running {
						f.oar.Release(j.ID) //nolint:errcheck
					}
				})
				busy += 30 * simclock.Minute
				completed++
				return ci.Outcome{Result: ci.Success, Duration: 30 * simclock.Minute}
			}
			// Hold the executor while the job waits in the OAR queue; if the
			// job got to run inside the window the test still counts, but
			// the executor was pinned for the whole wait either way.
			busy += wait
			f.clock.After(wait, func() {
				switch f.oar.Job(j.ID).State {
				case oar.Waiting:
					f.oar.Cancel(j.ID) //nolint:errcheck
				case oar.Running:
					completed++
					f.oar.Release(j.ID) //nolint:errcheck
				case oar.Terminated:
					completed++
				}
			})
			return ci.Outcome{Result: ci.Aborted, Duration: wait}
		}})
		// Plain time-based scheduling: trigger once a day.
		f.clock.Every(simclock.Day, func() { f.ci.Trigger("t", "cron") }) //nolint:errcheck
		f.clock.RunFor(simclock.Week)
		return busy.Duration().Hours(), float64(completed)
	}

	// Average a fixed seed panel; the figure of merit is executor-hours per
	// completed test run.
	const seeds = 5
	var paperHours, cronHours, paperRuns, cronRuns float64
	for i := 0; i < b.N; i++ {
		paperHours, cronHours, paperRuns, cronRuns = 0, 0, 0, 0
		for s := int64(1); s <= seeds; s++ {
			h, r := runPaper(s)
			paperHours += h
			paperRuns += r
			h, r = runCron(s)
			cronHours += h
			cronRuns += r
		}
	}
	if paperRuns == 0 || cronRuns == 0 {
		b.Fatalf("degenerate scenario: sched runs=%v cron runs=%v", paperRuns, cronRuns)
	}
	b.ReportMetric(paperHours/paperRuns, "sched_hours_per_run")
	b.ReportMetric(cronHours/cronRuns, "cron_hours_per_run")
	b.ReportMetric(paperRuns/seeds, "sched_runs")
	b.ReportMetric(cronRuns/seeds, "cron_runs")
}
